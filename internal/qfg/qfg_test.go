package qfg

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"templar/internal/fragment"
	"templar/internal/sqlparse"
)

// figure3Log is the example query log from the paper's Figure 3a.
const figure3Log = `
25x: SELECT j.name FROM journal j
5x: SELECT p.title FROM publication p WHERE p.year > 2003
3x: SELECT p.title FROM journal j, publication p WHERE j.name = 'TMC' AND p.pid = j.pid
`

func buildFigure3(t *testing.T, ob fragment.Obscurity) *Graph {
	t.Helper()
	entries, err := sqlparse.ParseLog(figure3Log)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(entries, ob)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFigure3bOccurrences(t *testing.T) {
	// Figure 3b: 25x j.name (SELECT), 8x p.title, 28x journal,
	// 8x publication, 5x p.year ?op ?val, 3x j.name ?op ?val.
	g := buildFigure3(t, fragment.NoConstOp)
	checks := []struct {
		f    fragment.Fragment
		want int
	}{
		{fragment.Attr("journal.name", ""), 25},
		{fragment.Attr("publication.title", ""), 8},
		{fragment.Relation("journal"), 28},
		{fragment.Relation("publication"), 8},
		{fragment.Pred("publication.year", ">", sqlparse.Value{Kind: sqlparse.NumberVal, N: 2003}, fragment.NoConstOp), 5},
		{fragment.Pred("journal.name", "=", sqlparse.Value{Kind: sqlparse.StringVal, S: "TMC"}, fragment.NoConstOp), 3},
	}
	for _, c := range checks {
		if got := g.Occurrences(c.f); got != c.want {
			t.Errorf("nv(%v) = %d, want %d", c.f, got, c.want)
		}
	}
	if g.Queries() != 33 {
		t.Errorf("Queries = %d, want 33", g.Queries())
	}
}

func TestFigure3cCoOccurrences(t *testing.T) {
	// Figure 3c edge weights: p.title–publication 8, p.title–p.year?op?val 5,
	// p.title–journal 3, journal–j.name?op?val 3, journal–publication 3.
	g := buildFigure3(t, fragment.NoConstOp)
	title := fragment.Attr("publication.title", "")
	pub := fragment.Relation("publication")
	jour := fragment.Relation("journal")
	year := fragment.Pred("publication.year", ">", sqlparse.Value{Kind: sqlparse.NumberVal, N: 2003}, fragment.NoConstOp)
	jname := fragment.Pred("journal.name", "=", sqlparse.Value{Kind: sqlparse.StringVal, S: "TMC"}, fragment.NoConstOp)
	checks := []struct {
		a, b fragment.Fragment
		want int
	}{
		{title, pub, 8},
		{title, year, 5},
		{title, jour, 3},
		{jour, jname, 3},
		{jour, pub, 3},
		{year, jname, 0}, // never co-occur
	}
	for _, c := range checks {
		if got := g.CoOccurrences(c.a, c.b); got != c.want {
			t.Errorf("ne(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		// Symmetry.
		if got := g.CoOccurrences(c.b, c.a); got != c.want {
			t.Errorf("ne symmetric (%v, %v) = %d, want %d", c.b, c.a, got, c.want)
		}
	}
}

func TestDiceDefinition(t *testing.T) {
	g := buildFigure3(t, fragment.NoConstOp)
	title := fragment.Attr("publication.title", "")
	pub := fragment.Relation("publication")
	// Dice = 2*8 / (8+8) = 1: p.title and publication always co-occur.
	if d := g.Dice(title, pub); math.Abs(d-1) > 1e-12 {
		t.Errorf("Dice(title, publication) = %v, want 1", d)
	}
	jour := fragment.Relation("journal")
	// Dice(journal, publication) = 2*3/(28+8) = 6/36.
	if d := g.Dice(jour, pub); math.Abs(d-6.0/36.0) > 1e-12 {
		t.Errorf("Dice(journal, publication) = %v, want %v", d, 6.0/36.0)
	}
	if d := g.DiceRelations("journal", "publication"); math.Abs(d-6.0/36.0) > 1e-12 {
		t.Errorf("DiceRelations = %v", d)
	}
}

func TestDiceUnknownFragmentsZero(t *testing.T) {
	g := buildFigure3(t, fragment.NoConstOp)
	unknown := fragment.Relation("nonexistent")
	if d := g.Dice(unknown, unknown); d != 0 {
		t.Errorf("Dice(unknown, unknown) = %v", d)
	}
	if d := g.DiceRelations("x", "y"); d != 0 {
		t.Errorf("DiceRelations unknown = %v", d)
	}
}

func TestDiceSelfIsOne(t *testing.T) {
	g := buildFigure3(t, fragment.NoConstOp)
	jour := fragment.Relation("journal")
	if d := g.Dice(jour, jour); math.Abs(d-1) > 1e-12 {
		t.Errorf("Dice(x, x) = %v, want 1", d)
	}
	if g.CoOccurrences(jour, jour) != g.Occurrences(jour) {
		t.Error("ne(x,x) must equal nv(x)")
	}
}

func TestObscurityAffectsMatching(t *testing.T) {
	// Two queries differing only in the constant collapse to the same WHERE
	// fragment at NoConst but not at Full.
	log := `
SELECT p.title FROM publication p WHERE p.year > 2000
SELECT p.title FROM publication p WHERE p.year > 1995
`
	entries, err := sqlparse.ParseLog(log)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Build(entries, fragment.Full)
	if err != nil {
		t.Fatal(err)
	}
	entries2, _ := sqlparse.ParseLog(log)
	noconst, err := Build(entries2, fragment.NoConst)
	if err != nil {
		t.Fatal(err)
	}
	fullFrag := fragment.Pred("publication.year", ">", sqlparse.Value{Kind: sqlparse.NumberVal, N: 2000}, fragment.Full)
	if got := full.Occurrences(fullFrag); got != 1 {
		t.Errorf("Full nv = %d, want 1", got)
	}
	ncFrag := fragment.Pred("publication.year", ">", sqlparse.Value{}, fragment.NoConst)
	if got := noconst.Occurrences(ncFrag); got != 2 {
		t.Errorf("NoConst nv = %d, want 2", got)
	}
}

func TestVerticesEdgesCounts(t *testing.T) {
	g := buildFigure3(t, fragment.NoConstOp)
	if g.Vertices() != 6 {
		t.Errorf("Vertices = %d, want 6 (Figure 3b)", g.Vertices())
	}
	// Edges from Figure 3c: title-pub, title-year, title-jour, jour-jname,
	// jour-pub, pub-jname, title-jname, pub-year... enumerate: query 2 has
	// {title, pub, year} -> 3 pairs; query 3 has {title, jour, pub, jname}
	// -> 6 pairs; query 1 has {j.name(SELECT), journal} -> 1 pair.
	// Overlap: none between the pair sets except... q2 pairs:
	// (title,pub),(title,year),(pub,year); q3: (title,jour),(title,pub),
	// (title,jname),(jour,pub),(jour,jname),(pub,jname); q1: (jnameSel,jour).
	// Distinct = 3 + 6 + 1 - 1 shared (title,pub) = 9.
	if g.Edges() != 9 {
		t.Errorf("Edges = %d, want 9", g.Edges())
	}
}

func TestAddQueryZeroCountIgnored(t *testing.T) {
	g := New(fragment.Full)
	q := sqlparse.MustParse("SELECT j.name FROM journal j")
	_ = q.Resolve(nil)
	g.AddQuery(q, 0)
	g.AddQuery(q, -5)
	if g.Queries() != 0 || g.Vertices() != 0 {
		t.Fatal("zero/negative counts must be ignored")
	}
}

func TestTopOrdering(t *testing.T) {
	g := buildFigure3(t, fragment.NoConstOp)
	top := g.Top(2)
	if len(top) != 2 {
		t.Fatalf("Top(2) len = %d", len(top))
	}
	if top[0].Fragment != (fragment.Fragment{Context: fragment.From, Expr: "journal"}) || top[0].Count != 28 {
		t.Errorf("Top[0] = %+v", top[0])
	}
	if top[1].Count != 25 {
		t.Errorf("Top[1] = %+v", top[1])
	}
	all := g.Top(1000)
	if len(all) != g.Vertices() {
		t.Errorf("Top(1000) = %d, want %d", len(all), g.Vertices())
	}
}

func TestNeighborsSortedByDice(t *testing.T) {
	g := buildFigure3(t, fragment.NoConstOp)
	title := fragment.Attr("publication.title", "")
	nb := g.Neighbors(title)
	if len(nb) == 0 {
		t.Fatal("no neighbors for p.title")
	}
	for i := 1; i < len(nb); i++ {
		if nb[i].Dice > nb[i-1].Dice {
			t.Fatalf("neighbors not sorted by Dice: %v", nb)
		}
	}
	if nb[0].Fragment != fragment.Relation("publication") {
		t.Errorf("strongest neighbor = %v, want publication", nb[0].Fragment)
	}
}

func TestConcurrentReads(t *testing.T) {
	g := buildFigure3(t, fragment.NoConstOp)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Dice(fragment.Relation("journal"), fragment.Relation("publication"))
				g.Occurrences(fragment.Relation("journal"))
				g.Top(3)
			}
		}()
	}
	wg.Wait()
}

func TestDicePropertyBounds(t *testing.T) {
	// Property: for any pair of fragments present in the graph,
	// 0 <= Dice <= 1 and Dice is symmetric.
	g := buildFigure3(t, fragment.NoConstOp)
	all := g.Top(100)
	f := func(i, j uint8) bool {
		a := all[int(i)%len(all)].Fragment
		b := all[int(j)%len(all)].Fragment
		d1 := g.Dice(a, b)
		d2 := g.Dice(b, a)
		return d1 >= 0 && d1 <= 1 && d1 == d2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBuildResolveError(t *testing.T) {
	q := sqlparse.MustParse("SELECT z.title FROM publication p")
	_, err := Build([]sqlparse.LogEntry{{Query: q, Count: 1}}, fragment.Full)
	if err == nil {
		t.Fatal("expected resolve error")
	}
}

func BenchmarkAddQuery(b *testing.B) {
	q := sqlparse.MustParse("SELECT p.title FROM journal j, publication p WHERE j.name = 'TMC' AND p.year > 2000 AND p.pid = j.pid")
	_ = q.Resolve(nil)
	g := New(fragment.NoConstOp)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.AddQuery(q, 1)
	}
}

// Dice benchmarks (map-backed vs compiled snapshot) live in snapshot_test.go.
