package qfg

import (
	"math"
	"reflect"
	"testing"

	"templar/internal/fragment"
	"templar/internal/sqlparse"
)

// partsGraph builds a small graph carrying both within-query and session
// evidence, so the round-trip exercises integer counts and blended floats.
func partsGraph(t *testing.T) *Graph {
	t.Helper()
	entries, err := sqlparse.ParseLog(`
4x: SELECT j.name FROM journal j
2x: SELECT p.title FROM publication p WHERE p.year > 2003
SELECT p.title FROM journal j, publication p WHERE j.name = 'TMC' AND p.jid = j.jid
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(entries, fragment.NoConstOp)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddSession([]*sqlparse.Query{entries[0].Query, entries[2].Query}, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	return g
}

func samePartsBits(a, b SnapshotParts) bool {
	if a.Obscurity != b.Obscurity || a.Queries != b.Queries {
		return false
	}
	if !reflect.DeepEqual(a.NV, b.NV) || !reflect.DeepEqual(a.RowStart, b.RowStart) ||
		!reflect.DeepEqual(a.ColID, b.ColID) || !reflect.DeepEqual(a.NECount, b.NECount) {
		return false
	}
	if len(a.Co) != len(b.Co) {
		return false
	}
	for i := range a.Co {
		if math.Float64bits(a.Co[i]) != math.Float64bits(b.Co[i]) {
			return false
		}
	}
	return true
}

func TestSnapshotPartsRoundTrip(t *testing.T) {
	snap := partsGraph(t).Snapshot(nil)
	re, err := NewSnapshotFromParts(snap.Interner(), snap.Parts())
	if err != nil {
		t.Fatal(err)
	}
	if !samePartsBits(re.Parts(), snap.Parts()) {
		t.Fatal("parts changed across NewSnapshotFromParts")
	}
	if re.Edges() != snap.Edges() || re.Vertices() != snap.Vertices() || re.Queries() != snap.Queries() {
		t.Fatalf("stats diverged: %d/%d/%d vs %d/%d/%d",
			re.Edges(), re.Vertices(), re.Queries(), snap.Edges(), snap.Vertices(), snap.Queries())
	}
	n := uint32(snap.Vertices())
	for a := uint32(0); a < n; a++ {
		for b := a; b < n; b++ {
			if got, want := re.DiceID(a, b), snap.DiceID(a, b); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("DiceID(%d, %d) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestNewSnapshotFromPartsValidation(t *testing.T) {
	snap := partsGraph(t).Snapshot(nil)
	good := snap.Parts()
	in := snap.Interner()

	mutate := func(name string, f func(p *SnapshotParts)) {
		p := good
		// Deep-copy the slices a case may edit in place.
		p.NV = append([]int(nil), good.NV...)
		p.RowStart = append([]uint32(nil), good.RowStart...)
		p.ColID = append([]uint32(nil), good.ColID...)
		p.Co = append([]float64(nil), good.Co...)
		p.NECount = append([]int(nil), good.NECount...)
		f(&p)
		if _, err := NewSnapshotFromParts(in, p); err == nil {
			t.Errorf("%s: invalid parts accepted", name)
		}
	}

	if _, err := NewSnapshotFromParts(nil, good); err == nil {
		t.Error("nil interner accepted")
	}
	mutate("short row index", func(p *SnapshotParts) { p.RowStart = p.RowStart[:len(p.RowStart)-1] })
	mutate("row index not starting at 0", func(p *SnapshotParts) { p.RowStart[0] = 1 })
	mutate("row index overrunning adjacency", func(p *SnapshotParts) { p.RowStart[len(p.RowStart)-1]++ })
	mutate("decreasing row index", func(p *SnapshotParts) { p.RowStart[1] = p.RowStart[len(p.RowStart)-1] + 1 })
	mutate("neighbor out of range", func(p *SnapshotParts) { p.ColID[0] = uint32(len(p.NV)) })
	mutate("unsorted row", func(p *SnapshotParts) {
		// Give the first fragment with ≥ 2 neighbors a duplicate neighbor.
		for id := 0; id+1 < len(p.RowStart); id++ {
			if p.RowStart[id+1]-p.RowStart[id] >= 2 {
				p.ColID[p.RowStart[id]+1] = p.ColID[p.RowStart[id]]
				return
			}
		}
		t.Fatal("no fragment with two neighbors")
	})
	mutate("negative nv", func(p *SnapshotParts) { p.NV[0] = -1 })
	mutate("negative ne", func(p *SnapshotParts) { p.NECount[0] = -1 })
	mutate("negative queries", func(p *SnapshotParts) { p.Queries = -1 })
	mutate("adjacency arrays disagreeing", func(p *SnapshotParts) { p.Co = p.Co[:len(p.Co)-1] })
	mutate("more vertices than interned fragments", func(p *SnapshotParts) {
		p.NV = append(p.NV, 1)
		p.RowStart = append(p.RowStart, p.RowStart[len(p.RowStart)-1])
	})
}

// TestRehydrateGraph rebuilds a mutable graph from a compiled snapshot and
// re-snapshots it against the same interner: every array must come back bit
// for bit, and the rehydrated graph must agree with the original on the
// map-backed accessors too.
func TestRehydrateGraph(t *testing.T) {
	g := partsGraph(t)
	snap := g.Snapshot(nil)
	re := RehydrateGraph(snap)
	if re.Queries() != g.Queries() || re.Vertices() != g.Vertices() || re.Edges() != g.Edges() || re.SessionEdges() != g.SessionEdges() {
		t.Fatalf("rehydrated stats %d/%d/%d/%d, want %d/%d/%d/%d",
			re.Queries(), re.Vertices(), re.Edges(), re.SessionEdges(),
			g.Queries(), g.Vertices(), g.Edges(), g.SessionEdges())
	}
	if !samePartsBits(re.Snapshot(snap.Interner()).Parts(), snap.Parts()) {
		t.Fatal("re-snapshot of rehydrated graph diverged")
	}
	for _, a := range snap.Interner().Fragments() {
		for _, b := range snap.Interner().Fragments() {
			if got, want := re.Dice(a, b), g.Dice(a, b); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("Dice(%v, %v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

// TestNewLiveFromSnapshot checks the store-loaded serving path: the first
// publication is the loaded snapshot itself, appends keep working, and
// fragment IDs stay stable across the republish.
func TestNewLiveFromSnapshot(t *testing.T) {
	snap := partsGraph(t).Snapshot(nil)
	live := NewLiveFromSnapshot(snap)
	if live.CurrentSnapshot() != snap {
		t.Fatal("first publication is not the loaded snapshot")
	}
	q, err := sqlparse.Parse("SELECT j.name FROM journal j WHERE j.name = 'TKDE'")
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Resolve(nil); err != nil {
		t.Fatal(err)
	}
	live.AddQuery(q, 2)
	after := live.CurrentSnapshot()
	if after.Queries() != snap.Queries()+2 {
		t.Fatalf("queries = %d, want %d", after.Queries(), snap.Queries()+2)
	}
	if after.Interner() != snap.Interner() {
		t.Fatal("republish switched interners")
	}
	journal := fragment.Relation("journal")
	id := snap.Lookup(journal)
	if id == fragment.NoID {
		t.Fatal("journal missing from loaded snapshot")
	}
	if after.Lookup(journal) != id {
		t.Fatalf("fragment ID moved across republish: %d vs %d", after.Lookup(journal), id)
	}
	if got, want := after.OccurrencesID(id), snap.OccurrencesID(id)+2; got != want {
		t.Fatalf("nv(journal) = %d after append, want %d", got, want)
	}
}
