package qfg

import (
	"testing"

	"templar/internal/fragment"
	"templar/internal/sqlparse"
)

// TestReplayReset is the re-bootstrap gate: Reset must leave a Live in the
// exact state NewLiveFromSnapshot would build — bit-identical snapshot,
// pinned interner IDs — and the reset engine must stay a full peer, so
// appends applied after the reset keep matching an engine that never
// diverged. This is the path a replication follower takes when its tail
// position has been compacted away and it falls back to a fresh snapshot.
func TestReplayReset(t *testing.T) {
	build := func() *Live {
		entries, err := sqlparse.ParseLog("SELECT j.name FROM journal j")
		if err != nil {
			t.Fatal(err)
		}
		g, err := Build(entries, fragment.NoConstOp)
		if err != nil {
			t.Fatal(err)
		}
		return NewLive(g)
	}

	primary := build()
	primary.AddQueries(parseAll(t,
		"SELECT z.name FROM z_venue z",
		"SELECT a.name FROM a_author a, z_venue z WHERE a.vid = z.vid",
	), []int{2, 1})

	// The follower drifted onto a different history; Reset discards it.
	follower := build()
	follower.AddQueries(parseAll(t, "SELECT m.title FROM m_paper m"), nil)

	follower.Reset(primary.CurrentSnapshot())
	assertSnapshotsBitIdentical(t, follower.CurrentSnapshot(), primary.CurrentSnapshot())

	// Identical appends after the reset must keep the engines identical,
	// interner ID assignment included.
	more := []ReplayOp{
		{Queries: parseAll(t, "SELECT p.title FROM publication p WHERE p.year > 2003")},
		{Session: true, Count: 2, Decay: 0.5, Queries: parseAll(t,
			"SELECT j.name FROM journal j",
			"SELECT b.name FROM b_conf b",
		)},
	}
	applyIncremental(t, primary, more)
	if err := follower.Replay(more); err != nil {
		t.Fatal(err)
	}
	assertSnapshotsBitIdentical(t, follower.CurrentSnapshot(), primary.CurrentSnapshot())
}
