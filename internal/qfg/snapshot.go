package qfg

import (
	"sort"

	"templar/internal/fragment"
)

// Snapshot is an immutable, compiled view of a Graph: fragments are interned
// to dense uint32 IDs, nv lives in a flat slice indexed by ID, and ne (with
// any blended session evidence) is CSR-style sorted adjacency probed by
// binary search. A Snapshot answers Dice with a handful of array reads —
// no locks, no map hashing, no string comparisons — and is safe to share
// across any number of concurrent readers.
//
// Snapshots compiled from the same Interner agree on fragment IDs, so a
// serving layer can republish a fresh Snapshot after every log append while
// in-flight readers keep using the one they loaded.
type Snapshot struct {
	obscurity fragment.Obscurity
	interner  *fragment.Interner
	queries   int

	// nv[id] is the occurrence count of fragment id; IDs interned after
	// this snapshot was compiled fall past the end and read as absent.
	nv []int
	// CSR adjacency over fragment IDs: the neighbors of id are
	// colID[rowStart[id]:rowStart[id+1]], sorted ascending, with the
	// blended co-occurrence float64(ne) + sess in co and the raw integer
	// ne in neCount at the same index.
	rowStart []uint32
	colID    []uint32
	co       []float64
	neCount  []int

	edges int
}

// SnapshotSource yields the current snapshot of a possibly-evolving QFG.
// *Snapshot (itself) and *Live (its latest publication) both satisfy it.
type SnapshotSource interface {
	CurrentSnapshot() *Snapshot
}

// CurrentSnapshot returns the snapshot itself, making a fixed *Snapshot a
// SnapshotSource for consumers that never see log appends.
func (s *Snapshot) CurrentSnapshot() *Snapshot { return s }

// internFragments interns the graph's current fragment set into in, in
// sorted order — exactly the ID assignment Snapshot performs — without
// paying for a compile. Live.Replay uses it to reproduce, per replayed
// record, the IDs an incremental republish after that record would have
// assigned.
func (g *Graph) internFragments(in *fragment.Interner) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	frags := make([]fragment.Fragment, 0, len(g.nv))
	for f := range g.nv {
		frags = append(frags, f)
	}
	sort.Slice(frags, func(i, j int) bool { return less(frags[i], frags[j]) })
	for _, f := range frags {
		in.Intern(f)
	}
}

// Snapshot compiles an immutable snapshot of the graph's current state.
// Fragments are interned into in; passing nil creates a fresh table. The
// compile holds the graph's read lock, so it can run concurrently with
// readers but serializes against AddQuery/AddSession.
func (g *Graph) Snapshot(in *fragment.Interner) *Snapshot {
	if in == nil {
		in = fragment.NewInterner()
	}
	g.mu.RLock()
	defer g.mu.RUnlock()

	// Intern in sorted fragment order so a fresh interner assigns
	// deterministic IDs regardless of map iteration order.
	frags := make([]fragment.Fragment, 0, len(g.nv))
	for f := range g.nv {
		frags = append(frags, f)
	}
	sort.Slice(frags, func(i, j int) bool { return less(frags[i], frags[j]) })
	for _, f := range frags {
		in.Intern(f)
	}

	s := &Snapshot{
		obscurity: g.obscurity,
		interner:  in,
		queries:   g.queries,
		nv:        make([]int, in.Len()),
	}
	for _, f := range frags {
		s.nv[in.Lookup(f)] = g.nv[f]
	}

	// Union the within-query and session edge sets into per-ID half-edge
	// counts, then lay the CSR arrays out row by row.
	type edge struct {
		a, b uint32
		co   float64
		ne   int
	}
	edges := make([]edge, 0, len(g.ne)+len(g.sessNe))
	seen := make(map[pairKey]bool, len(g.sessNe))
	for pk, n := range g.ne {
		e := edge{a: in.Lookup(pk.a), b: in.Lookup(pk.b), co: float64(n), ne: n}
		if g.sessNe != nil {
			if w, ok := g.sessNe[pk]; ok {
				e.co = float64(n) + w
				seen[pk] = true
			}
		}
		edges = append(edges, e)
	}
	for pk, w := range g.sessNe {
		if seen[pk] {
			continue
		}
		// Session-only pair: the fragments never co-occur within one query.
		edges = append(edges, edge{a: in.Lookup(pk.a), b: in.Lookup(pk.b), co: w})
	}
	s.edges = len(edges)

	degree := make([]uint32, len(s.nv))
	for _, e := range edges {
		degree[e.a]++
		degree[e.b]++
	}
	s.rowStart = make([]uint32, len(s.nv)+1)
	for i, d := range degree {
		s.rowStart[i+1] = s.rowStart[i] + d
	}
	half := int(s.rowStart[len(s.nv)])
	s.colID = make([]uint32, half)
	s.co = make([]float64, half)
	s.neCount = make([]int, half)
	next := make([]uint32, len(s.nv))
	copy(next, s.rowStart[:len(s.nv)])
	place := func(row, col uint32, co float64, ne int) {
		i := next[row]
		s.colID[i] = col
		s.co[i] = co
		s.neCount[i] = ne
		next[row]++
	}
	for _, e := range edges {
		place(e.a, e.b, e.co, e.ne)
		place(e.b, e.a, e.co, e.ne)
	}
	for id := 0; id < len(s.nv); id++ {
		lo, hi := s.rowStart[id], s.rowStart[id+1]
		row := rowSorter{s, int(lo), int(hi)}
		sort.Sort(row)
	}
	return s
}

// rowSorter sorts one CSR row's parallel arrays by neighbor ID.
type rowSorter struct {
	s      *Snapshot
	lo, hi int
}

func (r rowSorter) Len() int { return r.hi - r.lo }
func (r rowSorter) Less(i, j int) bool {
	return r.s.colID[r.lo+i] < r.s.colID[r.lo+j]
}
func (r rowSorter) Swap(i, j int) {
	i, j = r.lo+i, r.lo+j
	r.s.colID[i], r.s.colID[j] = r.s.colID[j], r.s.colID[i]
	r.s.co[i], r.s.co[j] = r.s.co[j], r.s.co[i]
	r.s.neCount[i], r.s.neCount[j] = r.s.neCount[j], r.s.neCount[i]
}

// Obscurity returns the obscurity level the snapshot was compiled at.
func (s *Snapshot) Obscurity() fragment.Obscurity { return s.obscurity }

// Interner returns the shared interning table fragment IDs come from.
func (s *Snapshot) Interner() *fragment.Interner { return s.interner }

// Queries returns the total logged queries at compile time.
func (s *Snapshot) Queries() int { return s.queries }

// Vertices returns the number of fragment IDs the snapshot covers (the
// interner's size at compile time, including fragments from sibling graphs
// sharing the table).
func (s *Snapshot) Vertices() int { return len(s.nv) }

// Edges returns the number of distinct co-occurring fragment pairs
// (including session-only pairs).
func (s *Snapshot) Edges() int { return s.edges }

// Lookup returns the snapshot-local ID of a fragment, or fragment.NoID when
// the fragment is absent (never interned, or interned after compile).
// Consumers translate fragments to IDs once per request with Lookup, then
// probe with the ID-based methods.
func (s *Snapshot) Lookup(f fragment.Fragment) uint32 {
	id := s.interner.Lookup(f)
	if !s.inRange(id) {
		return fragment.NoID
	}
	return id
}

// inRange reports whether id indexes this snapshot's arrays. The uint64
// comparison stays correct on 32-bit platforms, where int(fragment.NoID)
// would wrap negative and slip past an int comparison.
func (s *Snapshot) inRange(id uint32) bool {
	return uint64(id) < uint64(len(s.nv))
}

// occ is nv by ID; absent IDs (including fragment.NoID) occur zero times.
func (s *Snapshot) occ(id uint32) int {
	if !s.inRange(id) {
		return 0
	}
	return s.nv[id]
}

// edgeIndex binary-searches the CSR index of the (a, b) edge for a != b,
// probing the shorter of the two adjacency rows. It returns -1 when the
// fragments never co-occur or either ID is absent.
func (s *Snapshot) edgeIndex(a, b uint32) int {
	if !s.inRange(a) || !s.inRange(b) {
		return -1
	}
	if s.rowStart[a+1]-s.rowStart[a] > s.rowStart[b+1]-s.rowStart[b] {
		a, b = b, a
	}
	lo, hi := int(s.rowStart[a]), int(s.rowStart[a+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch c := s.colID[mid]; {
		case c < b:
			lo = mid + 1
		case c > b:
			hi = mid
		default:
			return mid
		}
	}
	return -1
}

// edgeCo returns the blended co-occurrence float64(ne) + sess for a != b.
func (s *Snapshot) edgeCo(a, b uint32) float64 {
	if i := s.edgeIndex(a, b); i >= 0 {
		return s.co[i]
	}
	return 0
}

// edgeNe returns the raw integer co-occurrence count for a != b.
func (s *Snapshot) edgeNe(a, b uint32) int {
	if i := s.edgeIndex(a, b); i >= 0 {
		return s.neCount[i]
	}
	return 0
}

// OccurrencesID returns nv for a fragment ID.
func (s *Snapshot) OccurrencesID(id uint32) int { return s.occ(id) }

// Occurrences returns nv(f), like Graph.Occurrences.
func (s *Snapshot) Occurrences(f fragment.Fragment) int { return s.occ(s.Lookup(f)) }

// DiceID is the lock-free hot path: the Dice coefficient of two interned
// fragments, bit-identical to Graph.Dice on the same state. fragment.NoID
// operands score as absent fragments.
func (s *Snapshot) DiceID(a, b uint32) float64 {
	na, nb := s.occ(a), s.occ(b)
	if na+nb == 0 {
		return 0
	}
	var ne float64
	if a == b {
		ne = float64(na)
	} else {
		ne = s.edgeCo(a, b)
	}
	d := 2 * ne / float64(na+nb)
	if d > 1 {
		// Same clamp as Graph.Dice: session evidence can push the blended
		// coefficient past the pure Dice ceiling.
		d = 1
	}
	return d
}

// Dice looks both fragments up and defers to DiceID.
func (s *Snapshot) Dice(a, b fragment.Fragment) float64 {
	ia := s.Lookup(a)
	var ib uint32
	if a == b {
		ib = ia
	} else {
		ib = s.Lookup(b)
	}
	return s.DiceID(ia, ib)
}

// CoOccurrences returns the raw ne(a, b), like Graph.CoOccurrences.
func (s *Snapshot) CoOccurrences(a, b fragment.Fragment) int {
	if a == b {
		return s.Occurrences(a)
	}
	return s.edgeNe(s.Lookup(a), s.Lookup(b))
}

// DiceRelations is Dice over FROM fragments of two relation names; it
// satisfies joinpath.DiceSource, so log-driven join weights can be derived
// from the snapshot at generator build time.
func (s *Snapshot) DiceRelations(relA, relB string) float64 {
	return s.Dice(fragment.Relation(relA), fragment.Relation(relB))
}

// RelationCoOccurrences satisfies joinpath.CountSource for the raw-count
// weight ablation.
func (s *Snapshot) RelationCoOccurrences(relA, relB string) int {
	return s.CoOccurrences(fragment.Relation(relA), fragment.Relation(relB))
}
