package fragment

import (
	"fmt"
	"sync"
)

// NoID is the sentinel returned for fragments that have never been interned.
// It can never be a valid fragment ID (an Interner refuses to grow that far).
const NoID = ^uint32(0)

// Interner assigns dense uint32 IDs to fragments, one shared table per
// dataset. IDs are stable for the lifetime of the Interner, so snapshots
// compiled from successive versions of a growing QFG agree on the ID of
// every fragment they share — a fragment interned after a snapshot was
// compiled simply falls outside that snapshot's arrays and scores as absent.
//
// An Interner is safe for concurrent use. Lookups take a read lock only;
// Intern takes the write lock only when it actually inserts.
type Interner struct {
	mu    sync.RWMutex
	ids   map[Fragment]uint32
	frags []Fragment
}

// NewInterner returns an empty interning table.
func NewInterner() *Interner {
	return &Interner{ids: make(map[Fragment]uint32)}
}

// Intern returns f's ID, assigning the next dense ID on first sight.
func (in *Interner) Intern(f Fragment) uint32 {
	in.mu.RLock()
	id, ok := in.ids[f]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[f]; ok {
		return id
	}
	id = uint32(len(in.frags))
	if id == NoID {
		panic("fragment: interner overflow")
	}
	in.ids[f] = id
	in.frags = append(in.frags, f)
	return id
}

// Lookup returns f's ID, or NoID if f has never been interned.
func (in *Interner) Lookup(f Fragment) uint32 {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if id, ok := in.ids[f]; ok {
		return id
	}
	return NoID
}

// Fragment returns the fragment behind an ID. It panics on IDs that were
// never assigned (including NoID), mirroring slice indexing.
func (in *Interner) Fragment(id uint32) Fragment {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.frags[id]
}

// Len returns how many fragments have been interned.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.frags)
}

// Fragments returns the interned fragments in ID order (index i holds the
// fragment with ID i). The returned slice is a copy, so serializers can
// walk it without holding any lock while the table keeps growing.
func (in *Interner) Fragments() []Fragment {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return append([]Fragment(nil), in.frags...)
}

// NewInternerFromFragments rebuilds an interning table from a fragment
// list in ID order, as produced by Fragments — the deserialization half of
// the snapshot store codec. It fails on duplicate fragments, which can
// never occur in a table built through Intern.
func NewInternerFromFragments(frags []Fragment) (*Interner, error) {
	in := &Interner{
		ids:   make(map[Fragment]uint32, len(frags)),
		frags: append([]Fragment(nil), frags...),
	}
	for i, f := range in.frags {
		if prev, ok := in.ids[f]; ok {
			return nil, fmt.Errorf("fragment: duplicate fragment %v at IDs %d and %d", f, prev, i)
		}
		if uint32(i) == NoID {
			return nil, fmt.Errorf("fragment: interner overflow at %d fragments", i)
		}
		in.ids[f] = uint32(i)
	}
	return in, nil
}
