package fragment

import (
	"testing"

	"templar/internal/sqlparse"
)

func parse(t *testing.T, src string) *sqlparse.Query {
	t.Helper()
	q, err := sqlparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Resolve(nil); err != nil {
		t.Fatal(err)
	}
	return q
}

func TestExtractPaperDefinitionExample(t *testing.T) {
	// Definition 3's worked example: the fragments of
	// SELECT t.a FROM table1 t, table2 u WHERE t.b = 15 AND t.id = u.id
	// are (t.a, SELECT), (table1, FROM), (table2, FROM), (t.b = 15, WHERE).
	q := parse(t, "SELECT t.a FROM table1 t, table2 u WHERE t.b = 15 AND t.id = u.id")
	got := Extract(q, Full)
	want := []Fragment{
		{Select, "table1.a"},
		{From, "table1"},
		{From, "table2"},
		{Where, "table1.b = 15"},
	}
	if len(got) != len(want) {
		t.Fatalf("Extract = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Extract[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestObscurityLevels(t *testing.T) {
	q := parse(t, "SELECT p.title FROM publication p WHERE p.year > 2000")
	for _, tc := range []struct {
		ob   Obscurity
		want string
	}{
		{Full, "publication.year > 2000"},
		{NoConst, "publication.year > ?val"},
		{NoConstOp, "publication.year ?op ?val"},
	} {
		frags := Extract(q, tc.ob)
		found := false
		for _, f := range frags {
			if f.Context == Where && f.Expr == tc.want {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: fragments %v missing %q", tc.ob, frags, tc.want)
		}
	}
}

func TestExtractExcludesJoinConditions(t *testing.T) {
	q := parse(t, "SELECT p.title FROM journal j, publication p WHERE j.jid = p.jid")
	for _, f := range Extract(q, Full) {
		if f.Context == Where {
			t.Errorf("join condition leaked into fragments: %v", f)
		}
	}
}

func TestExtractSelfJoinSingleRelationFragment(t *testing.T) {
	q := parse(t, "SELECT p.title FROM author a1, author a2, publication p WHERE a1.name = 'John' AND a2.name = 'Jane'")
	frags := Extract(q, Full)
	fromCount := 0
	for _, f := range frags {
		if f.Context == From && f.Expr == "author" {
			fromCount++
		}
	}
	// Fragments are a set: the duplicated relation appears once.
	if fromCount != 1 {
		t.Fatalf("author FROM fragments = %d, want 1", fromCount)
	}
	// But both predicates survive at Full obscurity...
	preds := 0
	for _, f := range frags {
		if f.Context == Where {
			preds++
		}
	}
	if preds != 2 {
		t.Fatalf("WHERE fragments = %d, want 2", preds)
	}
	// ...and collapse to one at NoConst (same attribute, same op).
	preds = 0
	for _, f := range Extract(q, NoConst) {
		if f.Context == Where {
			preds++
		}
	}
	if preds != 1 {
		t.Fatalf("NoConst WHERE fragments = %d, want 1", preds)
	}
}

func TestExtractAggregatesAndGroupOrder(t *testing.T) {
	q := parse(t, "SELECT a.name, COUNT(p.pid) FROM author a, publication p WHERE a.aid = p.aid GROUP BY a.name ORDER BY COUNT(p.pid) DESC")
	frags := Extract(q, Full)
	wantExprs := map[string]Context{
		"author.name":            Select,
		"COUNT(publication.pid)": Select,
		"author":                 From,
		"publication":            From,
	}
	for expr, ctx := range wantExprs {
		found := false
		for _, f := range frags {
			if f.Expr == expr && f.Context == ctx {
				found = true
			}
		}
		if !found {
			t.Errorf("missing fragment (%s, %v) in %v", expr, ctx, frags)
		}
	}
	hasGroup, hasOrder := false, false
	for _, f := range frags {
		if f.Context == GroupBy && f.Expr == "author.name" {
			hasGroup = true
		}
		if f.Context == OrderBy && f.Expr == "COUNT(publication.pid)" {
			hasOrder = true
		}
	}
	if !hasGroup || !hasOrder {
		t.Errorf("group/order fragments missing: %v", frags)
	}
}

func TestExtractCountStar(t *testing.T) {
	q := parse(t, "SELECT COUNT(*) FROM publication")
	frags := Extract(q, Full)
	found := false
	for _, f := range frags {
		if f.Context == Select && f.Expr == "COUNT(*)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("COUNT(*) fragment missing: %v", frags)
	}
}

func TestExtractDeterministicOrder(t *testing.T) {
	q := parse(t, "SELECT p.title, j.name FROM journal j, publication p WHERE p.year > 2000 AND j.name = 'TKDE'")
	a := Extract(q, NoConstOp)
	b := Extract(q, NoConstOp)
	if len(a) != len(b) {
		t.Fatal("nondeterministic extraction length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFragmentString(t *testing.T) {
	f := Fragment{Select, "publication.title"}
	if f.String() != "(publication.title, SELECT)" {
		t.Fatalf("String = %q", f.String())
	}
	if GroupBy.String() != "GROUP BY" || OrderBy.String() != "ORDER BY" {
		t.Fatal("context names")
	}
	if Full.String() != "Full" || NoConst.String() != "NoConst" || NoConstOp.String() != "NoConstOp" {
		t.Fatal("obscurity names")
	}
}

func TestLevels(t *testing.T) {
	l := Levels()
	if len(l) != 3 || l[0] != Full || l[2] != NoConstOp {
		t.Fatalf("Levels = %v", l)
	}
}

func TestPredExprStringValue(t *testing.T) {
	v := sqlparse.Value{Kind: sqlparse.StringVal, S: "Databases"}
	if got := PredExpr("domain.name", "=", v, Full); got != "domain.name = 'Databases'" {
		t.Fatalf("PredExpr Full = %q", got)
	}
	if got := PredExpr("domain.name", "=", v, NoConstOp); got != "domain.name ?op ?val" {
		t.Fatalf("PredExpr NoConstOp = %q", got)
	}
}
