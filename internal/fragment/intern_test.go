package fragment_test

import (
	"sync"
	"testing"
	"testing/quick"

	"templar/internal/datasets"
	"templar/internal/fragment"
	"templar/internal/sqlparse"
)

// TestInternerProperties checks the interning laws on arbitrary fragments:
// Intern is idempotent, IDs are dense and unique, and Fragment(Intern(f))
// round-trips.
func TestInternerProperties(t *testing.T) {
	in := fragment.NewInterner()
	seen := make(map[uint32]fragment.Fragment)
	prop := func(ctx uint8, expr string) bool {
		f := fragment.Fragment{Context: fragment.Context(ctx % 5), Expr: expr}
		id := in.Intern(f)
		if id == fragment.NoID {
			return false
		}
		if id2 := in.Intern(f); id2 != id {
			return false
		}
		if in.Lookup(f) != id {
			return false
		}
		if in.Fragment(id) != f {
			return false
		}
		if prev, dup := seen[id]; dup && prev != f {
			return false
		}
		seen[id] = f
		// IDs are dense: every assigned ID is below Len.
		return int(id) < in.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInternerLookupAbsent(t *testing.T) {
	in := fragment.NewInterner()
	if got := in.Lookup(fragment.Relation("x")); got != fragment.NoID {
		t.Fatalf("Lookup on empty interner = %d, want NoID", got)
	}
	if in.Len() != 0 {
		t.Fatalf("Len = %d", in.Len())
	}
}

// TestInternerRoundTripsDatasetLogs is the satellite property test: every
// fragment extractable from all three dataset gold-SQL logs, at every
// obscurity level, must round-trip through one shared interning table with
// a dense unique ID.
func TestInternerRoundTripsDatasetLogs(t *testing.T) {
	in := fragment.NewInterner()
	ids := make(map[uint32]fragment.Fragment)
	total := 0
	for _, ds := range datasets.All() {
		for _, task := range ds.Tasks {
			q, err := sqlparse.Parse(task.Gold)
			if err != nil {
				t.Fatalf("%s: %v", task.ID, err)
			}
			if err := q.Resolve(nil); err != nil {
				t.Fatalf("%s: %v", task.ID, err)
			}
			for _, ob := range fragment.Levels() {
				for _, f := range fragment.Extract(q, ob) {
					id := in.Intern(f)
					if got := in.Fragment(id); got != f {
						t.Fatalf("%s: round-trip %v -> %d -> %v", task.ID, f, id, got)
					}
					if prev, dup := ids[id]; dup && prev != f {
						t.Fatalf("%s: ID %d assigned to both %v and %v", task.ID, id, prev, f)
					}
					ids[id] = f
					total++
				}
			}
		}
	}
	if in.Len() != len(ids) {
		t.Fatalf("Len = %d, distinct IDs = %d", in.Len(), len(ids))
	}
	if in.Len() == 0 || total == 0 {
		t.Fatal("no fragments extracted — test premise broken")
	}
	t.Logf("interned %d distinct fragments from %d extractions", in.Len(), total)
}

// TestInternerConcurrent hammers Intern/Lookup from many goroutines (run
// under -race): same fragment must resolve to the same ID everywhere.
func TestInternerConcurrent(t *testing.T) {
	in := fragment.NewInterner()
	frags := []fragment.Fragment{
		fragment.Relation("journal"),
		fragment.Relation("publication"),
		fragment.Attr("publication.title", ""),
		fragment.Attr("publication.title", "COUNT"),
		{Context: fragment.Where, Expr: "publication.year ?op ?val"},
	}
	var wg sync.WaitGroup
	got := make([][]uint32, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = make([]uint32, len(frags))
			for i := 0; i < 1000; i++ {
				f := frags[i%len(frags)]
				got[g][i%len(frags)] = in.Intern(f)
				in.Lookup(f)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(got); g++ {
		for i := range frags {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutine %d saw ID %d for %v, goroutine 0 saw %d", g, got[g][i], frags[i], got[0][i])
			}
		}
	}
	if in.Len() != len(frags) {
		t.Fatalf("Len = %d, want %d", in.Len(), len(frags))
	}
}
