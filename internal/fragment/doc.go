// Package fragment defines the query fragment (paper Definition 3), the
// atomic building block Templar mines from SQL query logs: a pair of a SQL
// expression (or non-join predicate) and the clause context it resides in.
//
// It also implements the three obscurity levels of §IV — Full, NoConst and
// NoConstOp — which progressively replace literal constants and comparison
// operators with placeholders so that recurring semantic contexts in the
// log can match regardless of the specific values queried.
//
// # Entry points
//
// Extract returns the distinct fragments of one alias-resolved query at an
// obscurity level — the per-query unit the QFG is built from. Relation,
// Attr and Pred construct individual fragments for the common shapes;
// Fragment values compare by value and are usable as map keys directly.
//
// Interner assigns dense uint32 IDs to fragments, one shared table per
// dataset, so compiled QFG snapshots replace map lookups with array
// indexing on the scoring hot path. IDs are stable for the lifetime of the
// table: snapshots compiled from successive versions of a growing log
// agree on every shared fragment's ID, and NoID marks fragments a
// snapshot has never seen. Fragments/NewInternerFromFragments round-trip
// the table in ID order for the snapshot store codec (internal/store).
package fragment
