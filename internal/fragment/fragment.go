package fragment

import (
	"fmt"
	"sort"

	"templar/internal/sqlparse"
)

// Context identifies the clause a fragment resides in (τ in Definition 3).
type Context int

const (
	// Select is the projection clause context.
	Select Context = iota
	// From is the relation list context.
	From
	// Where is the (non-join) predicate context.
	Where
	// GroupBy is the grouping clause context.
	GroupBy
	// OrderBy is the ordering clause context.
	OrderBy
)

// String returns the SQL clause name.
func (c Context) String() string {
	switch c {
	case Select:
		return "SELECT"
	case From:
		return "FROM"
	case Where:
		return "WHERE"
	case GroupBy:
		return "GROUP BY"
	case OrderBy:
		return "ORDER BY"
	default:
		return fmt.Sprintf("Context(%d)", int(c))
	}
}

// Obscurity selects how much of a predicate is replaced by placeholders.
type Obscurity int

const (
	// Full retains all literal values and operators.
	Full Obscurity = iota
	// NoConst replaces literal constants with ?val.
	NoConst
	// NoConstOp additionally replaces comparison operators with ?op.
	NoConstOp
)

// String names the obscurity level as in the paper.
func (o Obscurity) String() string {
	switch o {
	case Full:
		return "Full"
	case NoConst:
		return "NoConst"
	case NoConstOp:
		return "NoConstOp"
	default:
		return fmt.Sprintf("Obscurity(%d)", int(o))
	}
}

// Levels lists all obscurity levels in increasing order of obscurity.
func Levels() []Obscurity { return []Obscurity{Full, NoConst, NoConstOp} }

// Fragment is a query fragment c = (χ, τ). Expr is a canonical rendering of
// the expression with alias-free relation names; fragments compare equal by
// value, so Fragment is directly usable as a map key.
type Fragment struct {
	Context Context
	Expr    string
}

// String renders "(expr, CONTEXT)" as in the paper's examples.
func (f Fragment) String() string { return "(" + f.Expr + ", " + f.Context.String() + ")" }

// Relation builds the FROM fragment for a relation name.
func Relation(name string) Fragment { return Fragment{Context: From, Expr: name} }

// Attr builds a SELECT fragment for a qualified attribute with optional
// aggregate function (e.g. "COUNT") applied.
func Attr(qualified string, agg string) Fragment {
	if agg != "" {
		return Fragment{Context: Select, Expr: agg + "(" + qualified + ")"}
	}
	return Fragment{Context: Select, Expr: qualified}
}

// PredExpr renders a predicate expression at a given obscurity level.
func PredExpr(qualified, op string, value sqlparse.Value, ob Obscurity) string {
	switch ob {
	case Full:
		return qualified + " " + op + " " + value.String()
	case NoConst:
		return qualified + " " + op + " ?val"
	default:
		return qualified + " ?op ?val"
	}
}

// Pred builds a WHERE fragment for a predicate at the given obscurity.
func Pred(qualified, op string, value sqlparse.Value, ob Obscurity) Fragment {
	return Fragment{Context: Where, Expr: PredExpr(qualified, op, value, ob)}
}

// inExpr renders an IN-list predicate at an obscurity level. NoConstOp
// collapses it onto the same "attr ?op ?val" fragment as ordinary
// comparisons, so all predicate shapes over one attribute pool their log
// evidence.
func inExpr(p sqlparse.InPred, ob Obscurity) string {
	switch ob {
	case Full:
		return p.String()
	case NoConst:
		return p.Column.String() + " IN (?val)"
	default:
		return p.Column.String() + " ?op ?val"
	}
}

// betweenExpr renders a BETWEEN predicate at an obscurity level, collapsing
// onto "attr ?op ?val" at NoConstOp like inExpr.
func betweenExpr(p sqlparse.BetweenPred, ob Obscurity) string {
	switch ob {
	case Full:
		return p.String()
	case NoConst:
		return p.Column.String() + " BETWEEN ?val AND ?val"
	default:
		return p.Column.String() + " ?op ?val"
	}
}

// Extract returns the distinct query fragments of a parsed query at the given
// obscurity level, in deterministic (sorted) order. Join conditions are not
// fragments (Definition 3 covers only non-join predicates); relations in the
// FROM clause are fragments, one per distinct relation name. The query must
// already be alias-resolved (sqlparse.Query.Resolve).
func Extract(q *sqlparse.Query, ob Obscurity) []Fragment {
	set := make(map[Fragment]bool)
	for _, s := range q.Select {
		if s.Star {
			if s.Agg != "" {
				set[Fragment{Context: Select, Expr: s.Agg + "(*)"}] = true
			}
			continue
		}
		set[Attr(s.Column.String(), s.Agg)] = true
	}
	for _, t := range q.From {
		set[Relation(t.Name)] = true
	}
	for _, c := range q.Where {
		switch p := c.(type) {
		case sqlparse.Pred:
			set[Pred(p.Column.String(), p.Op, p.Value, ob)] = true
		case sqlparse.InPred:
			set[Fragment{Context: Where, Expr: inExpr(p, ob)}] = true
		case sqlparse.BetweenPred:
			set[Fragment{Context: Where, Expr: betweenExpr(p, ob)}] = true
		}
	}
	for _, g := range q.GroupBy {
		set[Fragment{Context: GroupBy, Expr: g.String()}] = true
	}
	for _, o := range q.OrderBy {
		if o.Expr.Star && o.Expr.Agg == "" {
			continue
		}
		expr := o.Expr.String()
		set[Fragment{Context: OrderBy, Expr: expr}] = true
	}
	out := make([]Fragment, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Context != out[j].Context {
			return out[i].Context < out[j].Context
		}
		return out[i].Expr < out[j].Expr
	})
	return out
}
