package fragment

import (
	"testing"
)

func TestExtractInPredObscurity(t *testing.T) {
	q := parse(t, "SELECT b.name FROM business b WHERE b.city IN ('Phoenix', 'Tempe')")
	for _, tc := range []struct {
		ob   Obscurity
		want string
	}{
		{Full, "business.city IN ('Phoenix', 'Tempe')"},
		{NoConst, "business.city IN (?val)"},
		{NoConstOp, "business.city ?op ?val"},
	} {
		frags := Extract(q, tc.ob)
		found := false
		for _, f := range frags {
			if f.Context == Where && f.Expr == tc.want {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: missing %q in %v", tc.ob, tc.want, frags)
		}
	}
}

func TestExtractBetweenPredObscurity(t *testing.T) {
	q := parse(t, "SELECT p.title FROM publication p WHERE p.year BETWEEN 1995 AND 2005")
	for _, tc := range []struct {
		ob   Obscurity
		want string
	}{
		{Full, "publication.year BETWEEN 1995 AND 2005"},
		{NoConst, "publication.year BETWEEN ?val AND ?val"},
		{NoConstOp, "publication.year ?op ?val"},
	} {
		frags := Extract(q, tc.ob)
		found := false
		for _, f := range frags {
			if f.Context == Where && f.Expr == tc.want {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: missing %q in %v", tc.ob, tc.want, frags)
		}
	}
}

func TestNoConstOpUnifiesPredicateShapes(t *testing.T) {
	// At NoConstOp, a comparison, an IN-list and a BETWEEN over the same
	// attribute all collapse onto one fragment, pooling their log
	// evidence — the whole point of the obscurity ladder (§IV).
	qa := parse(t, "SELECT p.title FROM publication p WHERE p.year > 2000")
	qb := parse(t, "SELECT p.title FROM publication p WHERE p.year IN (1999, 2001)")
	qc := parse(t, "SELECT p.title FROM publication p WHERE p.year BETWEEN 1990 AND 1995")
	var exprs []string
	for _, frags := range [][]Fragment{Extract(qa, NoConstOp), Extract(qb, NoConstOp), Extract(qc, NoConstOp)} {
		for _, f := range frags {
			if f.Context == Where {
				exprs = append(exprs, f.Expr)
			}
		}
	}
	if len(exprs) != 3 {
		t.Fatalf("WHERE fragments = %v", exprs)
	}
	if exprs[0] != exprs[1] || exprs[1] != exprs[2] {
		t.Fatalf("NoConstOp did not unify shapes: %v", exprs)
	}
}
