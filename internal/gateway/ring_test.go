package gateway

import (
	"fmt"
	"testing"
)

func fleet(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("http://backend-%d:8080", i)
	}
	return names
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("tenant-%d", i)
	}
	return out
}

// TestRingDeterministicAndBalanced: the mapping is a pure function of
// the backend list, and vnodes spread keys across the whole fleet.
func TestRingDeterministicAndBalanced(t *testing.T) {
	names := fleet(4)
	a, b := NewRing(names), NewRing(names)
	counts := make([]int, len(names))
	for _, k := range keys(400) {
		i := a.Pick(k, nil)
		if j := b.Pick(k, nil); j != i {
			t.Fatalf("two rings over the same fleet disagree on %q: %d vs %d", k, i, j)
		}
		if i < 0 || i >= len(names) {
			t.Fatalf("Pick(%q) = %d", k, i)
		}
		counts[i]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("backend %d owns no keys: distribution %v", i, counts)
		}
	}
}

// TestRingStabilityUnderEjectReadmit is the consistent-hashing gate:
// ejecting one backend moves exactly the keys it owned (each to some
// live backend) and nobody else's; readmitting restores the original
// mapping bit-for-bit.
func TestRingStabilityUnderEjectReadmit(t *testing.T) {
	names := fleet(5)
	r := NewRing(names)
	ks := keys(500)

	before := make(map[string]int, len(ks))
	for _, k := range ks {
		before[k] = r.Pick(k, nil)
	}

	const ejected = 2
	alive := func(i int) bool { return i != ejected }
	moved := 0
	for _, k := range ks {
		got := r.Pick(k, alive)
		switch {
		case before[k] == ejected:
			moved++
			if got == ejected {
				t.Fatalf("key %q still routed to the ejected backend", k)
			}
		case got != before[k]:
			t.Fatalf("key %q moved from healthy backend %d to %d when backend %d was ejected",
				k, before[k], got, ejected)
		}
	}
	if moved == 0 {
		t.Fatal("ejected backend owned no keys; the test proved nothing")
	}

	// Readmission restores the exact original mapping.
	for _, k := range ks {
		if got := r.Pick(k, nil); got != before[k] {
			t.Fatalf("key %q settled on %d after readmission, originally %d", k, got, before[k])
		}
	}
}

// TestRingExhaustion: all backends rejected -> -1; a single survivor
// takes everything.
func TestRingExhaustion(t *testing.T) {
	r := NewRing(fleet(3))
	if got := r.Pick("anything", func(int) bool { return false }); got != -1 {
		t.Fatalf("Pick with no live backends = %d, want -1", got)
	}
	for _, k := range keys(50) {
		if got := r.Pick(k, func(i int) bool { return i == 1 }); got != 1 {
			t.Fatalf("sole survivor not picked for %q: %d", k, got)
		}
	}
}
