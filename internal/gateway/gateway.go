// Package gateway is the consistent-hash routing tier in front of a
// Templar primary and its follower replicas (see internal/repl).
//
// The fleet is static: the first backend is the primary, the rest are
// followers. Writes — log appends and everything under /admin — always
// go to the primary; it is the only process that owns a WAL. Reads hash
// the target dataset onto the ring, so one tenant's read traffic sticks
// to one backend (warm caches, monotonic reads through a single
// replica's applied sequence) and spreads tenants across the fleet.
//
// A health loop polls every backend's /healthz: an unreachable or
// draining backend is ejected (its tenants move to the next live owner
// clockwise — nobody else's move) and readmitted when it answers again.
// The same poll records each follower's replication lag; a follower
// whose lag for the requested dataset exceeds the staleness bound is
// skipped exactly like an ejected backend, so reads fall toward the
// primary (lag 0) rather than returning arbitrarily stale answers.
package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"time"

	"templar/pkg/api"
)

// Options configure a Gateway.
type Options struct {
	// MaxLag is the read staleness bound: a follower whose replication
	// lag for the requested dataset exceeds this many WAL sequences is
	// skipped for that read. 0 means any positive lag disqualifies.
	MaxLag int64
	// HealthEvery is the health-poll period (default 2s).
	HealthEvery time.Duration
	// Client issues health probes (default: 5s-timeout http.Client).
	Client *http.Client
	// Logger receives eject/readmit transitions; nil silences them.
	Logger *log.Logger
}

// backend is one fleet member plus the health state the poll maintains.
type backend struct {
	base  string
	proxy *httputil.ReverseProxy

	mu      sync.RWMutex
	healthy bool
	lag     map[string]int64 // lower-cased dataset -> follower lag
}

func (b *backend) setState(healthy bool, lag map[string]int64) (changed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	changed = b.healthy != healthy
	b.healthy = healthy
	b.lag = lag
	return changed
}

func (b *backend) isHealthy() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.healthy
}

func (b *backend) lagFor(dataset string) int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.lag[dataset]
}

// Gateway routes client traffic across the fleet. It implements
// http.Handler; Run starts the health loop.
type Gateway struct {
	backends []*backend
	ring     *Ring
	opts     Options
	httpc    *http.Client
}

// New builds a gateway over the backend base URLs; the first is the
// primary. Backends start healthy (optimistic: the first poll corrects
// within one period, and a cold gateway that refused all traffic until
// then would turn a deploy into an outage).
func New(backends []string, opts Options) (*Gateway, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends")
	}
	if opts.HealthEvery <= 0 {
		opts.HealthEvery = 2 * time.Second
	}
	g := &Gateway{opts: opts, httpc: opts.Client}
	if g.httpc == nil {
		g.httpc = &http.Client{Timeout: 5 * time.Second}
	}
	names := make([]string, 0, len(backends))
	for _, raw := range backends {
		base := strings.TrimRight(raw, "/")
		u, err := url.Parse(base)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("gateway: backend %q is not an absolute URL", raw)
		}
		g.backends = append(g.backends, &backend{
			base:    base,
			proxy:   httputil.NewSingleHostReverseProxy(u),
			healthy: true,
		})
		names = append(names, base)
	}
	g.ring = NewRing(names)
	return g, nil
}

// Primary returns the primary's base URL.
func (g *Gateway) Primary() string { return g.backends[0].base }

// Run polls backend health every HealthEvery until ctx is done.
func (g *Gateway) Run(ctx context.Context) {
	t := time.NewTicker(g.opts.HealthEvery)
	defer t.Stop()
	for {
		g.PollHealth(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// PollHealth probes every backend's /healthz once, ejecting the
// unreachable and the draining, readmitting recovered ones, and
// recording each follower's per-dataset replication lag.
func (g *Gateway) PollHealth(ctx context.Context) {
	for _, b := range g.backends {
		healthy, lag := g.probe(ctx, b)
		if b.setState(healthy, lag) && g.opts.Logger != nil {
			verb := "readmitted"
			if !healthy {
				verb = "ejected"
			}
			g.opts.Logger.Printf("gateway: backend %s %s", b.base, verb)
		}
	}
}

func (g *Gateway) probe(ctx context.Context, b *backend) (bool, map[string]int64) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/healthz", nil)
	if err != nil {
		return false, nil
	}
	resp, err := g.httpc.Do(req)
	if err != nil {
		return false, nil
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	// A draining server answers 503 with status "draining": ejected like
	// a dead one, so the balancer stops routing before the drain ends.
	if err != nil || resp.StatusCode != http.StatusOK {
		return false, nil
	}
	var hr api.HealthResponse
	if err := json.Unmarshal(raw, &hr); err != nil || hr.Status != "ok" {
		return false, nil
	}
	lag := make(map[string]int64)
	for _, ds := range hr.Datasets {
		if ds.Repl != nil {
			lag[strings.ToLower(ds.Name)] = ds.Repl.Lag
		}
	}
	if len(hr.Datasets) == 0 && hr.Repl != nil {
		lag[strings.ToLower(hr.Dataset)] = hr.Repl.Lag
	}
	return true, lag
}

// readable reports whether backend i may serve a read of dataset: it
// must be healthy and, when it is a follower of that dataset, within
// the staleness bound. The primary carries no lag entry, so it is
// always readable — a fully stale fleet degrades to primary-only.
func (g *Gateway) readable(i int, dataset string) bool {
	b := g.backends[i]
	return b.isHealthy() && b.lagFor(dataset) <= g.opts.MaxLag
}

// datasetKey extracts the routing key from a request path: the
// {dataset} segment of /v1/... and /v2/... routes, "" for the
// unprefixed legacy routes that alias the default dataset (still a
// consistent key — all default-dataset traffic lands together).
func datasetKey(path string) string {
	seg := strings.Split(strings.Trim(path, "/"), "/")
	if len(seg) >= 3 && (seg[0] == "v1" || seg[0] == "v2") {
		return strings.ToLower(seg[1])
	}
	return ""
}

// isWrite reports whether the request must reach the primary: log
// appends (the only client-facing mutation) and the /admin plane. The
// replication endpoints (/wal, /snapshot) are primary-only too — a
// follower answers them 501.
func isWrite(r *http.Request) bool {
	path := strings.TrimRight(r.URL.Path, "/")
	return strings.HasPrefix(path, "/admin") ||
		strings.HasSuffix(path, "/log") ||
		strings.HasSuffix(path, "/wal") ||
		strings.HasSuffix(path, "/snapshot")
}

// ServeHTTP routes one request: /healthz answers from the gateway
// itself (the fleet view), writes go to the primary, reads go to the
// ring's pick among readable backends.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		g.writeHealth(w)
		return
	}
	if isWrite(r) {
		g.backends[0].proxy.ServeHTTP(w, r)
		return
	}
	ds := datasetKey(r.URL.Path)
	idx := g.ring.Pick(ds, func(i int) bool { return g.readable(i, ds) })
	if idx < 0 {
		e := api.NewError(http.StatusServiceUnavailable, api.CodeOverloaded, "gateway: no healthy backend")
		w.Header().Set("Content-Type", api.ProblemContentType)
		w.WriteHeader(e.Status)
		json.NewEncoder(w).Encode(e)
		return
	}
	g.backends[idx].proxy.ServeHTTP(w, r)
}

// BackendHealth is one fleet member's state in the gateway's own
// /healthz body.
type BackendHealth struct {
	URL     string           `json:"url"`
	Primary bool             `json:"primary,omitempty"`
	Healthy bool             `json:"healthy"`
	Lag     map[string]int64 `json:"lag,omitempty"`
}

// GatewayHealth is the gateway's own /healthz body: "ok" while at least
// one backend is routable, "degraded" otherwise.
type GatewayHealth struct {
	Status   string          `json:"status"`
	Backends []BackendHealth `json:"backends"`
}

func (g *Gateway) writeHealth(w http.ResponseWriter) {
	h := GatewayHealth{Status: "degraded"}
	for i, b := range g.backends {
		b.mu.RLock()
		bh := BackendHealth{URL: b.base, Primary: i == 0, Healthy: b.healthy}
		if len(b.lag) > 0 {
			bh.Lag = make(map[string]int64, len(b.lag))
			for k, v := range b.lag {
				bh.Lag[k] = v
			}
		}
		b.mu.RUnlock()
		if bh.Healthy {
			h.Status = "ok"
		}
		h.Backends = append(h.Backends, bh)
	}
	code := http.StatusOK
	if h.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(h)
}
