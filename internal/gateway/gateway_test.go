package gateway

// Gateway routing tests: write-always-to-primary, eject/readmit moving
// only the ejected backend's tenants, the read staleness bound, and
// workload parity — a seeded read mix answered through the gateway
// bit-identically to the primary once the follower fleet has converged.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/qfg"
	"templar/internal/repl"
	"templar/internal/serve"
	"templar/internal/sqlparse"
	"templar/internal/store"
	"templar/internal/templar"
	"templar/internal/wal"
	"templar/internal/workload"
	"templar/pkg/api"
)

// stubBackend is a scriptable fleet member: /healthz follows its down
// flag and configured per-dataset lag, every other route echoes the
// backend's index so tests can see where the gateway routed.
type stubBackend struct {
	idx  int
	down atomic.Bool
	lag  atomic.Pointer[map[string]int64]
}

func (s *stubBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		if s.down.Load() {
			http.Error(w, `{"status":"draining"}`, http.StatusServiceUnavailable)
			return
		}
		h := api.HealthResponse{Status: "ok"}
		if lag := s.lag.Load(); lag != nil {
			for ds, n := range *lag {
				h.Datasets = append(h.Datasets, api.DatasetStatus{
					Name: ds, Repl: &api.ReplicationStatus{Role: "follower", Lag: n},
				})
			}
		}
		json.NewEncoder(w).Encode(h)
		return
	}
	json.NewEncoder(w).Encode(map[string]any{"backend": s.idx, "method": r.Method, "path": r.URL.Path})
}

// stubFleet builds n scriptable backends plus a gateway over them.
func stubFleet(t *testing.T, n int, opts Options) ([]*stubBackend, *Gateway) {
	t.Helper()
	stubs := make([]*stubBackend, n)
	bases := make([]string, n)
	for i := range stubs {
		stubs[i] = &stubBackend{idx: i}
		ts := httptest.NewServer(stubs[i])
		t.Cleanup(ts.Close)
		bases[i] = ts.URL
	}
	g, err := New(bases, opts)
	if err != nil {
		t.Fatal(err)
	}
	g.PollHealth(context.Background())
	return stubs, g
}

// route sends one request through the gateway handler and returns which
// backend index answered it.
func route(t *testing.T, g *Gateway, method, path string) int {
	t.Helper()
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(method, path, strings.NewReader("{}")))
	if rec.Code != http.StatusOK {
		t.Fatalf("%s %s through gateway = %d: %s", method, path, rec.Code, rec.Body)
	}
	var echo struct {
		Backend int `json:"backend"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &echo); err != nil {
		t.Fatalf("echo decode: %v: %s", err, rec.Body)
	}
	return echo.Backend
}

// TestGatewayWritesAlwaysToPrimary: every mutating or primary-only route
// lands on backend 0, whatever the ring would say; reads are sticky.
func TestGatewayWritesAlwaysToPrimary(t *testing.T) {
	_, g := stubFleet(t, 3, Options{})
	for _, w := range []struct{ method, path string }{
		{http.MethodPost, "/v2/mas/log"},
		{http.MethodPost, "/v1/mas/log"},
		{http.MethodPost, "/v1/log"},
		{http.MethodGet, "/admin/datasets"},
		{http.MethodPut, "/admin/datasets/mas/limits"},
		{http.MethodGet, "/v2/mas/wal?from=0"},
		{http.MethodGet, "/v2/mas/snapshot"},
	} {
		if got := route(t, g, w.method, w.path); got != 0 {
			t.Fatalf("%s %s routed to backend %d, want primary", w.method, w.path, got)
		}
	}
	// Reads for one dataset stick to one backend across repeats.
	first := route(t, g, http.MethodPost, "/v2/mas/map-keywords")
	for i := 0; i < 10; i++ {
		if got := route(t, g, http.MethodPost, "/v2/mas/translate"); got != first {
			t.Fatalf("read for mas bounced from backend %d to %d", first, got)
		}
	}
}

// TestGatewayEjectReadmitMovesOnlyEjectedTenants mirrors the ring gate
// through the full health loop: killing one backend's health moves only
// the datasets it served; its recovery restores the original mapping.
func TestGatewayEjectReadmitMovesOnlyEjectedTenants(t *testing.T) {
	stubs, g := stubFleet(t, 3, Options{})
	names := make([]string, 40)
	for i := range names {
		names[i] = fmt.Sprintf("ds%02d", i)
	}
	owner := func(ds string) int {
		return route(t, g, http.MethodPost, "/v2/"+ds+"/map-keywords")
	}
	before := map[string]int{}
	victims := 0
	const ejected = 1
	for _, ds := range names {
		before[ds] = owner(ds)
		if before[ds] == ejected {
			victims++
		}
	}
	if victims == 0 {
		t.Fatal("backend 1 owned nothing; the test proved nothing")
	}

	stubs[ejected].down.Store(true)
	g.PollHealth(context.Background())
	for _, ds := range names {
		got := owner(ds)
		if before[ds] == ejected {
			if got == ejected {
				t.Fatalf("dataset %s still routed to the ejected backend", ds)
			}
		} else if got != before[ds] {
			t.Fatalf("dataset %s moved from healthy backend %d to %d during an unrelated ejection",
				ds, before[ds], got)
		}
	}

	stubs[ejected].down.Store(false)
	g.PollHealth(context.Background())
	for _, ds := range names {
		if got := owner(ds); got != before[ds] {
			t.Fatalf("dataset %s at backend %d after readmission, originally %d", ds, got, before[ds])
		}
	}
}

// TestGatewayHonorsStalenessBound: a follower lagging past -max-lag is
// skipped for that dataset's reads (they fall toward the primary) while
// its fresh datasets keep being served; /healthz reports the lag.
func TestGatewayHonorsStalenessBound(t *testing.T) {
	stubs, g := stubFleet(t, 3, Options{MaxLag: 2})
	// Both followers are stale on "mas" and fresh on everything else.
	for _, s := range stubs[1:] {
		lag := map[string]int64{"mas": 5}
		s.lag.Store(&lag)
	}
	g.PollHealth(context.Background())

	for i := 0; i < 5; i++ {
		if got := route(t, g, http.MethodPost, "/v2/mas/map-keywords"); got != 0 {
			t.Fatalf("stale-dataset read routed to follower %d, want primary", got)
		}
	}
	// A dataset nobody lags on still spreads per the ring.
	fresh := ""
	for i := 0; i < 40 && fresh == ""; i++ {
		ds := fmt.Sprintf("ds%02d", i)
		if route(t, g, http.MethodPost, "/v2/"+ds+"/map-keywords") != 0 {
			fresh = ds
		}
	}
	if fresh == "" {
		t.Fatal("no dataset routed to a follower despite zero lag")
	}

	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var h GatewayHealth
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil || rec.Code != http.StatusOK {
		t.Fatalf("gateway healthz: %d %v %s", rec.Code, err, rec.Body)
	}
	if h.Status != "ok" || len(h.Backends) != 3 || !h.Backends[0].Primary || h.Backends[1].Lag["mas"] != 5 {
		t.Fatalf("fleet view = %+v", h)
	}
}

func buildGraph(t testing.TB, ds *datasets.Dataset) *qfg.Graph {
	t.Helper()
	entries := make([]sqlparse.LogEntry, 0, len(ds.Tasks))
	for _, task := range ds.Tasks {
		q, err := sqlparse.Parse(task.Gold)
		if err != nil {
			t.Fatalf("%s: %v", task.ID, err)
		}
		entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
	}
	g, err := qfg.Build(entries, fragment.NoConstOp)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// realPair boots a WAL-armed primary and a converging follower replica
// for one dataset, both behind real listeners.
func realPair(t *testing.T, ds *datasets.Dataset) (pts, fts *httptest.Server, f *repl.Follower, tn *serve.Tenant) {
	t.Helper()
	storeDir, walDir := t.TempDir(), t.TempDir()
	path := filepath.Join(storeDir, store.Filename(ds.Name))
	if _, err := os.Stat(path); err != nil {
		if err := store.WriteFile(path, ds.Name, buildGraph(t, ds).Snapshot(nil)); err != nil {
			t.Fatal(err)
		}
	}
	ar, err := store.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	live := qfg.NewLiveFromSnapshot(ar.Snapshot)
	sys := templar.NewLive(ds.DB, embedding.New(), live, templar.Options{LogJoin: true})
	tn = &serve.Tenant{Name: ds.Name, Sys: sys, Source: "store", StorePath: path, SnapshotSeq: ar.WalSeq}
	if _, err := serve.AttachWAL(tn, walDir, wal.Options{}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tn.WAL.Close() })
	server := func(tenant *serve.Tenant) *httptest.Server {
		reg := serve.NewRegistry()
		if err := reg.Add(tenant); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(serve.NewRegistryServer(reg, tenant.Name, 2, nil).Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	pts = server(tn)

	rc, err := repl.NewClient(pts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	flive, seq, err := repl.Bootstrap(context.Background(), rc, ds.Name)
	if err != nil {
		t.Fatal(err)
	}
	fsys := templar.NewLive(ds.DB, embedding.New(), flive, templar.Options{LogJoin: true})
	f = repl.NewFollower(rc, ds.Name, flive, seq, repl.FollowerOptions{
		PollInterval: 2 * time.Millisecond,
		Jitter:       func(d time.Duration) time.Duration { return d },
	})
	fts = server(&serve.Tenant{Name: ds.Name, Sys: fsys, Source: "replica", Follower: f, Primary: pts.URL})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return pts, fts, f, tn
}

// TestGatewayWorkloadParityWithDirect is the end-to-end gate: a seeded
// read workload answered through the gateway (primary + converged
// follower fleet) is bit-identical, request by request, to the same
// stream against the primary directly — and an append through the
// gateway lands on the primary's WAL.
func TestGatewayWorkloadParityWithDirect(t *testing.T) {
	ds := datasets.MAS()
	pts, fts, f, tn := realPair(t, ds)

	post := func(base, path string, body []byte) (int, []byte) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, raw
	}

	// Seed some history so the engines aren't pristine.
	for _, sql := range []string{"SELECT j.name FROM journal j", "SELECT a.name FROM author a"} {
		req, _ := json.Marshal(api.LogAppendRequest{Queries: []api.LogEntry{{SQL: sql}}})
		if s, raw := post(pts.URL, "/v2/mas/log", req); s != http.StatusOK {
			t.Fatalf("seed append = %d: %s", s, raw)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for f.AppliedSeq() < tn.WAL.LastSeq() {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at %d/%d", f.AppliedSeq(), tn.WAL.LastSeq())
		}
		time.Sleep(time.Millisecond)
	}

	g, err := New([]string{pts.URL, fts.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g.PollHealth(context.Background())
	gts := httptest.NewServer(g)
	t.Cleanup(gts.Close)

	profiles, err := workload.MineProfiles([]string{ds.Name})
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.Mix{MapKeywords: 5, InferJoins: 3, Translate: 2} // read-only: parity needs a quiesced log
	gen, err := workload.NewGenerator(profiles, mix, 4242)
	if err != nil {
		t.Fatal(err)
	}
	followerServed := 0
	for i, req := range gen.Generate(60) {
		var path string
		var body any
		switch req.Op {
		case workload.OpMapKeywords:
			path, body = "/map-keywords", req.MapKeywords
		case workload.OpInferJoins:
			path, body = "/infer-joins", req.InferJoins
		case workload.OpTranslate:
			path, body = "/translate", req.Translate
		default:
			t.Fatalf("unexpected op %q in a read mix", req.Op)
		}
		raw, _ := json.Marshal(body)
		url := "/v2/" + strings.ToLower(req.Dataset) + path
		ds1, direct := post(pts.URL, url, raw)
		ds2, viaGW := post(gts.URL, url, raw)
		if ds1 != http.StatusOK || ds2 != http.StatusOK {
			t.Fatalf("request %d %s: direct=%d gateway=%d", i, url, ds1, ds2)
		}
		if !bytes.Equal(direct, viaGW) {
			t.Fatalf("request %d %s diverges through the gateway:\ndirect:  %s\ngateway: %s", i, url, direct, viaGW)
		}
	}
	// The ring sends mas reads somewhere fixed; if that somewhere is the
	// follower, parity above already proved replica reads. Either way the
	// append below must reach the primary's WAL, not the replica.
	if g.ring.Pick("mas", nil) == 1 {
		followerServed++
	}
	before := tn.WAL.LastSeq()
	req, _ := json.Marshal(api.LogAppendRequest{Queries: []api.LogEntry{{SQL: "SELECT d.name FROM domain d"}}})
	if s, raw := post(gts.URL, "/v2/mas/log", req); s != http.StatusOK {
		t.Fatalf("append through gateway = %d: %s", s, raw)
	}
	if got := tn.WAL.LastSeq(); got != before+1 {
		t.Fatalf("primary WAL seq = %d after gateway append, want %d", got, before+1)
	}
	t.Logf("parity held for 60 requests (follower in read path: %v)", followerServed == 1)
}
