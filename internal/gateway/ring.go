package gateway

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// vnodesPerBackend is how many virtual nodes each backend contributes to
// the ring. More vnodes smooth the key distribution across a small
// static fleet; the count is fixed so a ring built twice from the same
// backend list is identical.
const vnodesPerBackend = 64

type vnode struct {
	hash    uint64
	backend int
}

// Ring is a consistent-hash ring over a static backend fleet. Every
// backend's vnodes are precomputed at construction and never removed:
// ejecting a backend does not rebuild the ring, lookups merely walk past
// its vnodes. That is the stability property the gateway leans on — when
// a backend is ejected, only the keys it owned move (each to the next
// live owner clockwise), and when it is readmitted exactly those keys
// move back; every other key's mapping is untouched.
type Ring struct {
	vnodes []vnode
	n      int
}

// NewRing builds the ring for the named backends. Names are hashed, so
// the mapping is a pure function of the backend list — every gateway
// configured with the same fleet routes identically.
func NewRing(names []string) *Ring {
	r := &Ring{n: len(names)}
	r.vnodes = make([]vnode, 0, len(names)*vnodesPerBackend)
	for i, name := range names {
		for v := 0; v < vnodesPerBackend; v++ {
			r.vnodes = append(r.vnodes, vnode{hash: hash64(name + "#" + strconv.Itoa(v)), backend: i})
		}
	}
	sort.Slice(r.vnodes, func(a, b int) bool { return r.vnodes[a].hash < r.vnodes[b].hash })
	return r
}

// Pick returns the backend that owns key: the owner of the first vnode
// clockwise from the key's hash whose backend alive accepts. A nil alive
// accepts everyone. Pick returns -1 only when every backend is rejected.
func (r *Ring) Pick(key string, alive func(int) bool) int {
	if len(r.vnodes) == 0 {
		return -1
	}
	h := hash64(key)
	start := sort.Search(len(r.vnodes), func(j int) bool { return r.vnodes[j].hash >= h })
	for probe := 0; probe < len(r.vnodes); probe++ {
		vn := r.vnodes[(start+probe)%len(r.vnodes)]
		if alive == nil || alive(vn.backend) {
			return vn.backend
		}
	}
	return -1
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	// FNV-1a of short, near-identical strings (vnode labels, tenant
	// names) clusters in the high bits the ring orders by; a
	// splitmix64-style finalizer restores the uniform spread consistent
	// hashing needs.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
