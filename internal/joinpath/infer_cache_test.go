package joinpath

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"templar/internal/schema"
)

// TestInferCacheParity pins the memoized path against a cache-cold
// Generator: every repeat call (any bag order, any topK) must return
// exactly what a fresh Generator computes.
func TestInferCacheParity(t *testing.T) {
	g := masGraph(t)
	warm := NewGenerator(g, nil)
	bags := [][]string{
		{"publication"},
		{"journal", "publication"},
		{"publication", "journal"}, // order must not matter
		{"domain", "journal"},
		{"author", "author", "publication"}, // self-join fork
	}
	for round := 0; round < 3; round++ {
		for _, bag := range bags {
			for topK := 1; topK <= 3; topK++ {
				want, wantErr := NewGenerator(g, nil).Infer(bag, topK)
				got, gotErr := warm.Infer(bag, topK)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("bag %v topK %d round %d: err %v vs fresh %v", bag, topK, round, gotErr, wantErr)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("bag %v topK %d round %d:\n got  %v\n want %v", bag, topK, round, got, want)
				}
			}
		}
	}
}

// TestInferCacheInfeasibleBag verifies deterministic failures are memoized
// and keep returning the identical error.
func TestInferCacheInfeasibleBag(t *testing.T) {
	g := schema.NewGraph()
	_ = g.AddRelation(schema.Relation{Name: "island", Attributes: []schema.Attribute{{Name: "x", Type: schema.Number, PrimaryKey: true}}})
	_ = g.AddRelation(schema.Relation{Name: "mainland", Attributes: []schema.Attribute{{Name: "y", Type: schema.Number, PrimaryKey: true}}})
	gen := NewGenerator(g, nil)
	_, err1 := gen.Infer([]string{"island", "mainland"}, 1)
	if err1 == nil {
		t.Fatal("expected infeasible-bag error")
	}
	_, err2 := gen.Infer([]string{"island", "mainland"}, 1)
	if err2 == nil || err1.Error() != err2.Error() {
		t.Fatalf("cached failure diverged: %v vs %v", err1, err2)
	}
}

// TestInferCacheCancellationNotCached proves a canceled search is not
// memoized: the same bag must succeed on the next (uncanceled) call.
func TestInferCacheCancellationNotCached(t *testing.T) {
	gen := NewGenerator(masGraph(t), nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := gen.InferCtx(ctx, []string{"domain", "journal"}, 2); err == nil {
		t.Fatal("expected cancellation error")
	}
	paths, err := gen.Infer([]string{"domain", "journal"}, 2)
	if err != nil || len(paths) == 0 {
		t.Fatalf("post-cancellation call poisoned: %v (%d paths)", err, len(paths))
	}
}

// TestInferResultIsAppendSafe verifies a caller appending to its result
// slice cannot clobber the cached tail of the full path list.
func TestInferResultIsAppendSafe(t *testing.T) {
	gen := NewGenerator(masGraph(t), nil)
	full, err := gen.Infer([]string{"domain", "journal"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 2 {
		t.Skipf("need ≥2 alternative paths, got %d", len(full))
	}
	one, err := gen.Infer([]string{"domain", "journal"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = append(one, Path{Relations: []string{"garbage"}})
	again, err := gen.Infer([]string{"domain", "journal"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, full) {
		t.Fatal("appending to a trimmed result corrupted the cache")
	}
}

// TestInferConcurrent hammers one Generator from many goroutines (run
// under -race in tier-1) across hit, miss and self-join-fork paths.
func TestInferCacheConcurrent(t *testing.T) {
	gen := NewGenerator(masGraph(t), nil)
	bags := [][]string{
		{"journal", "publication"},
		{"domain", "journal"},
		{"author", "author", "publication"},
		{"publication"},
	}
	want := make([][]Path, len(bags))
	for i, bag := range bags {
		w, err := NewGenerator(masGraph(t), nil).Infer(bag, 3)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 30; it++ {
				i := (g + it) % len(bags)
				got, err := gen.Infer(bags[i], 3)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if !reflect.DeepEqual(got, want[i]) {
					t.Errorf("goroutine %d iter %d: bag %v diverged under concurrency", g, it, bags[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestInferShardEviction fills a shard past capacity and checks the cache
// still answers correctly afterwards (epoch eviction drops entries, never
// correctness).
func TestInferShardEviction(t *testing.T) {
	gen := NewGenerator(masGraph(t), nil)
	// Synthesize entries straight into the cache to cross the cap without
	// needing thousands of real relations.
	for i := 0; i < inferCacheShards*inferShardCapacity+64; i++ {
		gen.cache.put(string(rune('a'+i%26))+string(rune('0'+i%10))+itoa(i), inferEntry{})
	}
	want, err := NewGenerator(masGraph(t), nil).Infer([]string{"journal", "publication"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := gen.Infer([]string{"journal", "publication"}, 2)
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("post-eviction inference diverged: %v, %v", got, err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
