package joinpath

import (
	"sort"
	"strings"
	"sync"
)

// inferCache memoizes InferCtx results per Generator. A Generator's graph
// and edge weights are immutable after construction, so a relation bag
// always infers the same path list — both the success case and the
// "relations not connected" failure are deterministic and cacheable.
// Cancellation errors are never cached (they say nothing about the bag).
//
// The cache is sharded to keep contention off the serving hot path and
// bounded with whole-shard epoch eviction: once a shard reaches its entry
// cap the shard map is dropped and repopulated on demand. That is cheaper
// and simpler than LRU bookkeeping per probe, and the steady-state working
// set (distinct relation bags of a workload) is tiny compared to the cap.
type inferCache struct {
	shards [inferCacheShards]inferShard
}

const (
	inferCacheShards   = 8
	inferShardCapacity = 256
)

type inferShard struct {
	mu sync.Mutex
	m  map[string]inferEntry
}

// inferEntry is one memoized outcome: the full (untrimmed) ranked path
// list, or the deterministic infeasibility error.
type inferEntry struct {
	paths []Path
	err   error
}

// inferKey builds the cache key: the bag as a sorted multiset. Path
// inference is order-independent (applyBag orders terminals by first
// occurrence, but the resulting Steiner problem — and the ranked output —
// depends only on the multiset), so sorting maximizes hits. buf is a
// reusable scratch slice; the (possibly regrown) buffer is returned so
// callers can retain it.
func inferKey(bag []string, buf []string) (string, []string) {
	buf = append(buf[:0], bag...)
	sort.Strings(buf)
	n := len(buf)
	for _, s := range buf {
		n += len(s)
	}
	var b strings.Builder
	b.Grow(n)
	for i, s := range buf {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(s)
	}
	return b.String(), buf
}

func (c *inferCache) shard(key string) *inferShard {
	// FNV-1a over the key, folded into the shard index.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%inferCacheShards]
}

func (c *inferCache) get(key string) (inferEntry, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.m[key]
	s.mu.Unlock()
	return e, ok
}

func (c *inferCache) put(key string, e inferEntry) {
	s := c.shard(key)
	s.mu.Lock()
	if s.m == nil || len(s.m) >= inferShardCapacity {
		s.m = make(map[string]inferEntry, 64)
	}
	s.m[key] = e
	s.mu.Unlock()
}

// keyScratch pools the sort buffer inferKey needs per call.
var keyScratchPool = sync.Pool{New: func() any { return new([]string) }}

// ---------------------------------------------------------------------------
// Pooled Dijkstra/Steiner working state (the cache-miss path).

// predEdge is the predecessor record of one Dijkstra sweep.
type predEdge struct {
	prev int
	he   halfEdge
}

// steinerScratch holds the per-call working state of the KMB approximation:
// one Dijkstra row (distances + predecessors) per terminal plus the shared
// visited bitmap. Pooled so repeated Infer calls on the same schema stop
// allocating O(terminals × vertices) state per sweep.
type steinerScratch struct {
	dists   [][]float64
	prevs   [][]predEdge
	visited []bool
}

var steinerScratchPool = sync.Pool{New: func() any { return new(steinerScratch) }}

// grab sizes the scratch for rows terminals over an n-vertex graph,
// reusing retained capacity. Dijkstra fully reinitializes every cell it
// reads, so stale values from previous calls are harmless.
func (s *steinerScratch) grab(rows, n int) {
	if cap(s.dists) < rows {
		s.dists = make([][]float64, rows)
		s.prevs = make([][]predEdge, rows)
	}
	s.dists = s.dists[:rows]
	s.prevs = s.prevs[:rows]
	for i := range s.dists {
		if cap(s.dists[i]) < n {
			s.dists[i] = make([]float64, n)
			s.prevs[i] = make([]predEdge, n)
		}
		s.dists[i] = s.dists[i][:n]
		s.prevs[i] = s.prevs[i][:n]
	}
	if cap(s.visited) < n {
		s.visited = make([]bool, n)
	}
	s.visited = s.visited[:n]
}
