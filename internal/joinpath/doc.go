// Package joinpath implements Templar's join path inference (paper §VI):
// given a bag of relations known to be part of the SQL translation, find
// the most likely join paths over the schema graph.
//
// Join path generation is modeled as the Steiner tree problem and solved
// with the classic KMB approximation (Kou, Markowsky, Berman 1981 — the
// paper's reference [21]). Edge weights are either uniform (the baseline:
// minimal number of join edges, i.e. the shortest join path) or log-driven:
//
//	wL(v1, v2) = 1 − Dice(q(v1), q(v2))
//
// so that relation pairs frequently joined in the SQL query log become
// cheap to traverse (§VI-A2).
//
// Self-joins — a bag containing the same relation more than once — are
// handled by forking the schema graph (Algorithm 4): the duplicated
// relation and everything that references it are cloned, with the fork
// terminating at FK-PK edges pointing away from the clone, which reattach
// to the shared graph (Figure 4).
//
// # Entry points
//
// NewGenerator precomputes the weighted adjacency graph once per schema
// and weight function; Infer then answers one relation bag, cloning the
// precomputed graph per call so a Generator is safe for any number of
// concurrent callers. LogWeights derives the log-driven weight function
// from anything exposing Dice over relation pairs (a qfg.Graph or a
// compiled qfg.Snapshot — with live logs, weights are baked from the
// current snapshot at engine-build time, see templar.System). CountWeights
// is the raw-co-occurrence ablation; UniformWeights is the shortest-path
// baseline. Path carries the inferred join edges with their Score and the
// Goodness value the NLIDB ranking blends in.
package joinpath
