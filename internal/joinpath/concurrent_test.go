package joinpath

import (
	"reflect"
	"sync"
	"testing"
)

// TestInferRepeatedSelfJoinIsolated guards the precomputed-base refactor:
// self-join forking extends a clone, never the shared base graph, so a
// second Infer on the same Generator must see an unforked graph and return
// identical paths.
func TestInferRepeatedSelfJoinIsolated(t *testing.T) {
	gen := NewGenerator(masGraph(t), nil)
	bag := []string{"author", "author", "publication"}
	first, err := gen.Infer(bag, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := gen.Infer(bag, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d diverged:\nfirst %v\nagain %v", i+2, first, again)
		}
	}
	// A plain bag after a forked bag must not see leftover clones.
	plain, err := gen.Infer([]string{"author", "publication"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range plain[0].Relations {
		if BaseRelation(rel) != rel {
			t.Fatalf("clone %q leaked into plain inference %v", rel, plain[0])
		}
	}
}

// TestInferConcurrent exercises one shared Generator from many goroutines
// (run with -race); every goroutine must see the sequential answer.
func TestInferConcurrent(t *testing.T) {
	gen := NewGenerator(masGraph(t), nil)
	bags := [][]string{
		{"author", "publication"},
		{"author", "author", "publication"},
		{"publication", "domain"},
		{"journal", "conference"},
	}
	want := make([][]Path, len(bags))
	for i, bag := range bags {
		paths, err := gen.Infer(bag, 3)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = paths
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 8; r++ {
				i := (w + r) % len(bags)
				paths, err := gen.Infer(bags[i], 3)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(paths, want[i]) {
					t.Errorf("concurrent Infer(%v) diverged", bags[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
