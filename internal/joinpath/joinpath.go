package joinpath

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"templar/internal/schema"
)

// WeightFunc assigns a weight in [0, 1] to the join edge between two
// relations. It must be symmetric.
type WeightFunc func(relA, relB string) float64

// UniformWeights is the default weight function of §VI-A1: every edge costs
// 1, so the minimum Steiner tree is the join path with the fewest joins.
func UniformWeights(string, string) float64 { return 1 }

// DiceSource supplies relation co-occurrence evidence (the QFG satisfies it).
type DiceSource interface {
	DiceRelations(relA, relB string) float64
}

// LogWeights returns the log-driven weight function wL of §VI-A2. Weights
// are clamped to a small positive floor so Dijkstra stays well-behaved when
// two relations always co-occur (Dice = 1).
func LogWeights(src DiceSource) WeightFunc {
	const floor = 1e-3
	return func(a, b string) float64 {
		w := 1 - src.DiceRelations(a, b)
		if w < floor {
			return floor
		}
		return w
	}
}

// CountSource supplies raw relation co-occurrence counts (the QFG satisfies
// it).
type CountSource interface {
	RelationCoOccurrences(relA, relB string) int
}

// CountWeights is the design-ablation alternative to LogWeights: edge
// weights derived from raw co-occurrence counts, w = 1/(1+ne), without the
// Dice normalization by individual occurrence counts. High-traffic hub
// relations make every adjacent edge cheap under this scheme, which is the
// failure mode Dice normalization prevents.
func CountWeights(src CountSource) WeightFunc {
	return func(a, b string) float64 {
		return 1 / (1 + float64(src.RelationCoOccurrences(a, b)))
	}
}

// Edge is one join edge of a resulting path, between two relation
// *instances*. Instances are distinct for self-joins (author, author#2);
// FK identifies the underlying FK-PK columns.
type Edge struct {
	FromInst string
	ToInst   string
	FK       schema.ForeignKey
	Weight   float64
}

// String renders "fromInst.fkAttr = toInst.pkAttr" style identity.
func (e Edge) String() string {
	return e.FromInst + "." + e.FK.FromAttr + " = " + e.ToInst + "." + e.FK.ToAttr
}

// Path is one inferred join path: a tree over relation instances.
type Path struct {
	// Relations lists every relation instance in the tree, sorted.
	// Instance names are the base relation name, with "#k" suffixes for
	// self-join clones (k ≥ 2).
	Relations []string
	// Edges are the join edges of the tree.
	Edges []Edge
	// TotalWeight is the Steiner objective Σ w(e).
	TotalWeight float64
	// Score is the paper's literal Scorej(j) = Σw(e) / |Ej|², defined as 1
	// for a single-relation path with no edges.
	Score float64
	// Goodness is the monotone ranking score used when combining a join
	// path with a keyword-mapping configuration: 1 / (1 + TotalWeight).
	// Higher is better; shorter/frequent paths win under both weightings.
	Goodness float64
}

// BaseRelation strips the "#k" clone suffix from an instance name.
func BaseRelation(inst string) string {
	if i := strings.IndexByte(inst, '#'); i >= 0 {
		return inst[:i]
	}
	return inst
}

// String renders the path as "a-b-c" over sorted instances.
func (p Path) String() string { return strings.Join(p.Relations, "-") }

// canonical produces a dedupe key from the edge set.
func (p Path) canonical() string {
	es := make([]string, len(p.Edges))
	for i, e := range p.Edges {
		a, b := e.FromInst+"."+e.FK.FromAttr, e.ToInst+"."+e.FK.ToAttr
		if b < a {
			a, b = b, a
		}
		es[i] = a + "=" + b
	}
	sort.Strings(es)
	return strings.Join(es, "&") + "|" + strings.Join(p.Relations, ",")
}

// Generator infers join paths over a schema graph with a weight function.
//
// A Generator is safe for concurrent use: the relation-instance adjacency
// graph (including every edge weight, which may be a log-driven Dice
// computation) is precomputed once at construction, and each Infer call
// works on a private clone so self-join forking never mutates shared state.
type Generator struct {
	graph  *schema.Graph
	weight WeightFunc
	// base is the precomputed relation-instance graph; Infer clones it
	// instead of re-deriving relations, FK edges and weights per call.
	base *relGraph
	// cache memoizes per-bag inference outcomes (see inferCache): the
	// graph and weights never change after construction, so the ranked
	// path list for a bag is a pure function of the bag.
	cache inferCache
}

// NewGenerator builds a Generator. A nil weight function means uniform.
func NewGenerator(g *schema.Graph, w WeightFunc) *Generator {
	if w == nil {
		w = UniformWeights
	}
	return &Generator{graph: g, weight: w, base: buildRelGraph(g, w)}
}

// Infer implements INFERJOINS with no cancellation; see InferCtx.
func (gen *Generator) Infer(bag []string, topK int) ([]Path, error) {
	return gen.InferCtx(context.Background(), bag, topK)
}

// InferCtx implements INFERJOINS: it returns up to topK join paths spanning
// the bag of relations (a multiset; duplicates trigger schema-graph
// forking), ranked from most to least likely. An empty bag is an error; a
// bag whose relations cannot be connected is an error.
//
// ctx is checked before every Dijkstra sweep of the Steiner approximation
// and between alternative-path retries, so a canceled request abandons the
// path search mid-flight; the wrapped ctx error is returned.
//
// Outcomes are memoized per bag (the Generator's graph and weights are
// immutable, so inference is deterministic): repeat bags — the common case
// when translation tries several configurations naming the same relations —
// skip the Steiner search entirely. The returned paths of a cache hit share
// their Relations/Edges backing with the cache; callers must treat them as
// read-only, which every caller in this module already does.
func (gen *Generator) InferCtx(ctx context.Context, bag []string, topK int) ([]Path, error) {
	if len(bag) == 0 {
		return nil, fmt.Errorf("joinpath: empty relation bag")
	}
	if topK <= 0 {
		topK = 1
	}
	for _, r := range bag {
		if _, ok := gen.graph.Relation(r); !ok {
			return nil, fmt.Errorf("joinpath: unknown relation %q", r)
		}
	}

	// Poll before the cache: a canceled request must not be handed a
	// cached answer it can no longer use — the contract is "canceled
	// requests abort", cache hit or not.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("joinpath: inference canceled: %w", err)
	}

	buf := keyScratchPool.Get().(*[]string)
	key, kb := inferKey(bag, *buf)
	*buf = kb
	keyScratchPool.Put(buf)

	if e, ok := gen.cache.get(key); ok {
		if e.err != nil {
			return nil, e.err
		}
		return trimPaths(e.paths, topK), nil
	}
	paths, err := gen.inferUncached(ctx, bag)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err // transient: says nothing about the bag
		}
		gen.cache.put(key, inferEntry{err: err})
		return nil, err
	}
	gen.cache.put(key, inferEntry{paths: paths})
	return trimPaths(paths, topK), nil
}

// trimPaths returns the best topK paths as a fresh top-level slice, so a
// caller appending to its result can never clobber the cached tail. The
// Path values themselves (and their Relations/Edges backing) stay shared.
func trimPaths(paths []Path, topK int) []Path {
	if len(paths) > topK {
		paths = paths[:topK]
	}
	return append([]Path(nil), paths...)
}

// inferUncached runs the actual Steiner search and returns the full ranked
// path list, untrimmed so one cache entry serves every topK.
func (gen *Generator) inferUncached(ctx context.Context, bag []string) ([]Path, error) {
	// Self-join forking is the only mutation of the relation graph, so the
	// shared precomputed base serves duplicate-free bags (the common case)
	// directly; only bags with duplicates pay for a private clone.
	rg := gen.base
	if hasDuplicates(bag) {
		rg = gen.base.clone()
	}
	terminals, err := rg.applyBag(bag)
	if err != nil {
		return nil, err
	}

	if len(terminals) == 1 {
		inst := rg.names[terminals[0]]
		return []Path{{Relations: []string{inst}, Score: 1, Goodness: 1}}, nil
	}

	best, err := rg.steiner(ctx, terminals, nil)
	if err != nil {
		return nil, err
	}
	paths := []Path{rg.toPath(best)}
	seen := map[string]bool{paths[0].canonical(): true}

	// Alternatives: re-run with each edge of the best tree banned.
	for _, te := range best.edges {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("joinpath: path search canceled: %w", err)
		}
		banned := map[edgeKey]bool{te.key(): true}
		alt, err := rg.steiner(ctx, terminals, banned)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, err // canceled mid-sweep, not a bridge
			}
			continue // this edge was a bridge; no alternative exists
		}
		p := rg.toPath(alt)
		if k := p.canonical(); !seen[k] {
			seen[k] = true
			paths = append(paths, p)
		}
	}
	sort.Slice(paths, func(i, j int) bool {
		if paths[i].TotalWeight != paths[j].TotalWeight {
			return paths[i].TotalWeight < paths[j].TotalWeight
		}
		if len(paths[i].Edges) != len(paths[j].Edges) {
			return len(paths[i].Edges) < len(paths[j].Edges)
		}
		return paths[i].canonical() < paths[j].canonical()
	})
	return paths, nil
}

// ---------------------------------------------------------------------------
// Internal relation-instance graph.

// relGraph is a multigraph over relation instances. Vertex 0..n-1 names are
// instance names; base(i) gives the underlying relation.
type relGraph struct {
	names []string
	idx   map[string]int
	// adj[i] lists half-edges; parallel FK edges are kept distinct.
	adj    [][]halfEdge
	weight WeightFunc
}

// halfEdge is a directed view of an undirected join edge.
type halfEdge struct {
	to int
	w  float64
	fk schema.ForeignKey
	// fkFromHere is true when the FK side of the edge is this vertex.
	fkFromHere bool
}

// edgeKey identifies an undirected edge instance.
type edgeKey struct {
	a, b int
	fk   schema.ForeignKey
}

func makeEdgeKey(a, b int, fk schema.ForeignKey) edgeKey {
	if b < a {
		a, b = b, a
	}
	return edgeKey{a, b, fk}
}

// treeEdge is an edge selected into a Steiner tree.
type treeEdge struct {
	a, b int
	w    float64
	fk   schema.ForeignKey
	// aIsFK reports whether vertex a is the FK side.
	aIsFK bool
}

func (t treeEdge) key() edgeKey { return makeEdgeKey(t.a, t.b, t.fk) }

// tree is a Steiner tree result.
type tree struct {
	vertices map[int]bool
	edges    []treeEdge
	total    float64
}

// hasDuplicates reports whether the relation bag names any relation twice.
// Bags are tiny (one relation per query keyword), so the common case scans
// without allocating; the map path guards pathological batch inputs.
func hasDuplicates(bag []string) bool {
	if len(bag) <= 16 {
		for i := 1; i < len(bag); i++ {
			for j := 0; j < i; j++ {
				if bag[i] == bag[j] {
					return true
				}
			}
		}
		return false
	}
	seen := make(map[string]bool, len(bag))
	for _, r := range bag {
		if seen[r] {
			return true
		}
		seen[r] = true
	}
	return false
}

// clone deep-copies the graph so self-join forking can extend it freely;
// concurrent Infer calls each get an isolated copy of the shared base.
func (rg *relGraph) clone() *relGraph {
	c := &relGraph{
		names:  append([]string(nil), rg.names...),
		idx:    make(map[string]int, len(rg.idx)),
		adj:    make([][]halfEdge, len(rg.adj)),
		weight: rg.weight,
	}
	for name, i := range rg.idx {
		c.idx[name] = i
	}
	for i, hes := range rg.adj {
		c.adj[i] = append([]halfEdge(nil), hes...)
	}
	return c
}

func buildRelGraph(g *schema.Graph, w WeightFunc) *relGraph {
	rg := &relGraph{idx: make(map[string]int), weight: w}
	for _, rn := range g.Relations() {
		rg.addVertex(rn)
	}
	for _, fk := range g.ForeignKeys() {
		rg.addEdge(rg.idx[fk.FromRel], rg.idx[fk.ToRel], fk)
	}
	return rg
}

func (rg *relGraph) addVertex(name string) int {
	i := len(rg.names)
	rg.names = append(rg.names, name)
	rg.idx[name] = i
	rg.adj = append(rg.adj, nil)
	return i
}

func (rg *relGraph) addEdge(a, b int, fk schema.ForeignKey) {
	w := rg.weight(BaseRelation(rg.names[a]), BaseRelation(rg.names[b]))
	rg.adj[a] = append(rg.adj[a], halfEdge{to: b, w: w, fk: fk, fkFromHere: fk.FromRel == BaseRelation(rg.names[a])})
	rg.adj[b] = append(rg.adj[b], halfEdge{to: a, w: w, fk: fk, fkFromHere: fk.FromRel == BaseRelation(rg.names[b])})
}

// applyBag turns a relation multiset into terminal vertex ids, forking the
// graph for duplicates (Algorithm 4: one fork per extra reference).
func (rg *relGraph) applyBag(bag []string) ([]int, error) {
	counts := make(map[string]int)
	order := make([]string, 0, len(bag))
	for _, r := range bag {
		if counts[r] == 0 {
			order = append(order, r)
		}
		counts[r]++
	}
	var terminals []int
	for _, r := range order {
		terminals = append(terminals, rg.idx[r])
		for d := 2; d <= counts[r]; d++ {
			cloneID := rg.fork(rg.idx[r], d)
			terminals = append(terminals, cloneID)
		}
	}
	return terminals, nil
}

// fork clones the subgraph rooted at relation vertex v (Algorithm 4 at the
// relation level): the duplicated relation and every relation that
// *references* it transitively are cloned; FK edges pointing away from a
// clone reattach to the shared original target. The clone of vertex i gets
// the instance name names[i] + "#d".
func (rg *relGraph) fork(v int, d int) int {
	suffix := fmt.Sprintf("#%d", d)
	cloneOf := make(map[int]int)
	var stack []int
	cloneOf[v] = rg.addVertex(rg.names[v] + suffix)
	stack = append(stack, v)
	visited := map[int]bool{v: true}
	for len(stack) > 0 {
		old := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		newV := cloneOf[old]
		for _, he := range rg.adj[old] {
			conn := he.to
			// Skip edges into already-cloned region (including edges among
			// previously created clones of other forks: only walk the
			// original graph, i.e. vertices without '#').
			if strings.IndexByte(rg.names[conn], '#') >= 0 {
				continue
			}
			// Algorithm 4 line 12: vertices already visited by this fork
			// were connected when first reached; re-visiting them would
			// add spurious edges back into the original graph.
			if visited[conn] {
				continue
			}
			if he.fkFromHere {
				// FK-PK edge in the direction old -> conn: terminate the
				// fork here; connect the clone to the shared vertex.
				rg.addEdge(newV, conn, he.fk)
				continue
			}
			// conn references old: clone conn and continue traversal.
			visited[conn] = true
			cloneOf[conn] = rg.addVertex(rg.names[conn] + suffix)
			rg.addEdge(newV, cloneOf[conn], he.fk)
			stack = append(stack, conn)
		}
	}
	return cloneOf[v]
}

// dijkstra computes shortest paths from src into the caller-provided
// (pooled) buffers, honoring banned edges. Every cell of dist, prev and
// visited is reinitialized before use, so reused buffers need no clearing.
func (rg *relGraph) dijkstra(src int, banned map[edgeKey]bool, dist []float64, prev []predEdge, visited []bool) {
	n := len(rg.names)
	for i := 0; i < n; i++ {
		dist[i] = math.Inf(1)
		prev[i] = predEdge{prev: -1}
		visited[i] = false
	}
	dist[src] = 0
	for {
		u, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !visited[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u < 0 {
			break
		}
		visited[u] = true
		for _, he := range rg.adj[u] {
			if banned != nil && banned[makeEdgeKey(u, he.to, he.fk)] {
				continue
			}
			if nd := dist[u] + he.w; nd < dist[he.to] {
				dist[he.to] = nd
				prev[he.to] = predEdge{prev: u, he: he}
			}
		}
	}
}

// steiner runs the KMB approximation over the terminals, polling ctx
// before each Dijkstra sweep (the dominant cost on large schemas).
func (rg *relGraph) steiner(ctx context.Context, terminals []int, banned map[edgeKey]bool) (*tree, error) {
	// Step 1: metric closure between terminals, over pooled sweep state.
	type closureEdge struct {
		a, b int // indexes into terminals
		d    float64
	}
	sc := steinerScratchPool.Get().(*steinerScratch)
	defer steinerScratchPool.Put(sc)
	sc.grab(len(terminals), len(rg.names))
	dists, prevs := sc.dists, sc.prevs
	for i, t := range terminals {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("joinpath: path search canceled: %w", err)
		}
		rg.dijkstra(t, banned, dists[i], prevs[i], sc.visited)
	}
	var closure []closureEdge
	for i := 0; i < len(terminals); i++ {
		for j := i + 1; j < len(terminals); j++ {
			d := dists[i][terminals[j]]
			if math.IsInf(d, 1) {
				return nil, fmt.Errorf("joinpath: relations %q and %q are not connected",
					rg.names[terminals[i]], rg.names[terminals[j]])
			}
			closure = append(closure, closureEdge{i, j, d})
		}
	}

	// Step 2: MST of the closure (Prim over terminal indexes).
	inMST := make([]bool, len(terminals))
	inMST[0] = true
	type mstPick struct{ a, b int }
	var picks []mstPick
	for len(picks) < len(terminals)-1 {
		best, bi := math.Inf(1), -1
		for ci, ce := range closure {
			if inMST[ce.a] == inMST[ce.b] {
				continue
			}
			if ce.d < best {
				best, bi = ce.d, ci
			}
		}
		if bi < 0 {
			return nil, fmt.Errorf("joinpath: terminals not connected")
		}
		ce := closure[bi]
		inMST[ce.a], inMST[ce.b] = true, true
		picks = append(picks, mstPick{ce.a, ce.b})
	}

	// Step 3: expand each MST edge into its shortest path; union edges.
	edgeSet := make(map[edgeKey]treeEdge)
	vertices := make(map[int]bool)
	for _, t := range terminals {
		vertices[t] = true
	}
	for _, pk := range picks {
		// Walk predecessors from terminals[pk.b] back to terminals[pk.a]
		// using the Dijkstra tree rooted at terminals[pk.a].
		cur := terminals[pk.b]
		for cur != terminals[pk.a] {
			pe := prevs[pk.a][cur]
			if pe.prev < 0 {
				return nil, fmt.Errorf("joinpath: internal: broken predecessor chain")
			}
			k := makeEdgeKey(pe.prev, cur, pe.he.fk)
			if _, ok := edgeSet[k]; !ok {
				// Orient the tree edge so .a is the FK side when possible.
				te := treeEdge{a: pe.prev, b: cur, w: pe.he.w, fk: pe.he.fk}
				te.aIsFK = pe.he.fk.FromRel == BaseRelation(rg.names[pe.prev])
				edgeSet[k] = te
			}
			vertices[pe.prev] = true
			vertices[cur] = true
			cur = pe.prev
		}
	}

	// Step 4: MST of the induced subgraph (Kruskal over collected edges —
	// the union of shortest paths can contain cycles).
	all := make([]treeEdge, 0, len(edgeSet))
	for _, te := range edgeSet {
		all = append(all, te)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w < all[j].w
		}
		return all[i].key().less(all[j].key())
	})
	parent := make(map[int]int)
	var find func(x int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	var mst []treeEdge
	for _, te := range all {
		ra, rb := find(te.a), find(te.b)
		if ra == rb {
			continue
		}
		parent[ra] = rb
		mst = append(mst, te)
	}

	// Step 5: prune non-terminal leaves repeatedly.
	termSet := make(map[int]bool, len(terminals))
	for _, t := range terminals {
		termSet[t] = true
	}
	for {
		degree := make(map[int]int)
		for _, te := range mst {
			degree[te.a]++
			degree[te.b]++
		}
		pruned := false
		var kept []treeEdge
		removeLeaf := -1
		for v, d := range degree {
			if d == 1 && !termSet[v] {
				removeLeaf = v
				break
			}
		}
		if removeLeaf >= 0 {
			for _, te := range mst {
				if te.a == removeLeaf || te.b == removeLeaf {
					pruned = true
					continue
				}
				kept = append(kept, te)
			}
			mst = kept
		}
		if !pruned {
			break
		}
	}

	tr := &tree{vertices: make(map[int]bool)}
	for _, t := range terminals {
		tr.vertices[t] = true
	}
	for _, te := range mst {
		tr.vertices[te.a] = true
		tr.vertices[te.b] = true
		tr.total += te.w
		tr.edges = append(tr.edges, te)
	}
	return tr, nil
}

// less orders edge keys deterministically.
func (k edgeKey) less(o edgeKey) bool {
	if k.a != o.a {
		return k.a < o.a
	}
	if k.b != o.b {
		return k.b < o.b
	}
	return k.fk.String() < o.fk.String()
}

// toPath converts an internal tree into the public Path form.
func (rg *relGraph) toPath(tr *tree) Path {
	var p Path
	for v := range tr.vertices {
		p.Relations = append(p.Relations, rg.names[v])
	}
	sort.Strings(p.Relations)
	edges := append([]treeEdge(nil), tr.edges...)
	sort.Slice(edges, func(i, j int) bool { return edges[i].key().less(edges[j].key()) })
	for _, te := range edges {
		from, to := te.a, te.b
		if !te.aIsFK {
			from, to = to, from
		}
		p.Edges = append(p.Edges, Edge{
			FromInst: rg.names[from],
			ToInst:   rg.names[to],
			FK:       te.fk,
			Weight:   te.w,
		})
	}
	p.TotalWeight = tr.total
	if len(p.Edges) == 0 {
		p.Score = 1
	} else {
		p.Score = p.TotalWeight / float64(len(p.Edges)*len(p.Edges))
	}
	p.Goodness = 1 / (1 + p.TotalWeight)
	return p
}
