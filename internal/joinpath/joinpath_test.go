package joinpath

import (
	"sort"
	"strings"
	"testing"

	"templar/internal/schema"
)

// masGraph builds the schema of the paper's Figure 1 (simplified Microsoft
// Academic Search database).
func masGraph(t testing.TB) *schema.Graph {
	t.Helper()
	g := schema.NewGraph()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	num := func(name string, pk bool) schema.Attribute {
		return schema.Attribute{Name: name, Type: schema.Number, PrimaryKey: pk}
	}
	text := func(name string) schema.Attribute {
		return schema.Attribute{Name: name, Type: schema.Text}
	}
	must(g.AddRelation(schema.Relation{Name: "organization", Attributes: []schema.Attribute{num("oid", true), text("name")}}))
	must(g.AddRelation(schema.Relation{Name: "author", Attributes: []schema.Attribute{num("aid", true), text("name"), num("oid", false)}}))
	must(g.AddRelation(schema.Relation{Name: "publication", Attributes: []schema.Attribute{num("pid", true), text("title"), num("year", false), num("cid", false), num("jid", false)}}))
	must(g.AddRelation(schema.Relation{Name: "writes", Attributes: []schema.Attribute{num("aid", false), num("pid", false)}}))
	must(g.AddRelation(schema.Relation{Name: "cite", Attributes: []schema.Attribute{num("citing", false), num("cited", false)}}))
	must(g.AddRelation(schema.Relation{Name: "journal", Attributes: []schema.Attribute{num("jid", true), text("name")}}))
	must(g.AddRelation(schema.Relation{Name: "conference", Attributes: []schema.Attribute{num("cid", true), text("name")}}))
	must(g.AddRelation(schema.Relation{Name: "domain", Attributes: []schema.Attribute{num("did", true), text("name")}}))
	must(g.AddRelation(schema.Relation{Name: "keyword", Attributes: []schema.Attribute{num("kid", true), text("keyword")}}))
	must(g.AddRelation(schema.Relation{Name: "domain_journal", Attributes: []schema.Attribute{num("did", false), num("jid", false)}}))
	must(g.AddRelation(schema.Relation{Name: "domain_conference", Attributes: []schema.Attribute{num("did", false), num("cid", false)}}))
	must(g.AddRelation(schema.Relation{Name: "domain_keyword", Attributes: []schema.Attribute{num("did", false), num("kid", false)}}))
	must(g.AddRelation(schema.Relation{Name: "publication_keyword", Attributes: []schema.Attribute{num("pid", false), num("kid", false)}}))
	fks := []schema.ForeignKey{
		{FromRel: "author", FromAttr: "oid", ToRel: "organization", ToAttr: "oid"},
		{FromRel: "writes", FromAttr: "aid", ToRel: "author", ToAttr: "aid"},
		{FromRel: "writes", FromAttr: "pid", ToRel: "publication", ToAttr: "pid"},
		{FromRel: "publication", FromAttr: "cid", ToRel: "conference", ToAttr: "cid"},
		{FromRel: "publication", FromAttr: "jid", ToRel: "journal", ToAttr: "jid"},
		{FromRel: "cite", FromAttr: "citing", ToRel: "publication", ToAttr: "pid"},
		{FromRel: "cite", FromAttr: "cited", ToRel: "publication", ToAttr: "pid"},
		{FromRel: "domain_journal", FromAttr: "did", ToRel: "domain", ToAttr: "did"},
		{FromRel: "domain_journal", FromAttr: "jid", ToRel: "journal", ToAttr: "jid"},
		{FromRel: "domain_conference", FromAttr: "did", ToRel: "domain", ToAttr: "did"},
		{FromRel: "domain_conference", FromAttr: "cid", ToRel: "conference", ToAttr: "cid"},
		{FromRel: "domain_keyword", FromAttr: "did", ToRel: "domain", ToAttr: "did"},
		{FromRel: "domain_keyword", FromAttr: "kid", ToRel: "keyword", ToAttr: "kid"},
		{FromRel: "publication_keyword", FromAttr: "pid", ToRel: "publication", ToAttr: "pid"},
		{FromRel: "publication_keyword", FromAttr: "kid", ToRel: "keyword", ToAttr: "kid"},
	}
	for _, fk := range fks {
		must(g.AddForeignKey(fk))
	}
	return g
}

// mapDice is a DiceSource backed by a fixed map.
type mapDice map[[2]string]float64

func (m mapDice) DiceRelations(a, b string) float64 {
	if b < a {
		a, b = b, a
	}
	return m[[2]string{a, b}]
}

func dicePair(a, b string) [2]string {
	if b < a {
		a, b = b, a
	}
	return [2]string{a, b}
}

func TestSingleRelationPath(t *testing.T) {
	gen := NewGenerator(masGraph(t), nil)
	paths, err := gen.Infer([]string{"publication"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %v", paths)
	}
	p := paths[0]
	if len(p.Edges) != 0 || p.Score != 1 || p.Goodness != 1 || p.Relations[0] != "publication" {
		t.Fatalf("path = %+v", p)
	}
}

func TestDirectJoin(t *testing.T) {
	gen := NewGenerator(masGraph(t), nil)
	paths, err := gen.Infer([]string{"publication", "journal"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := paths[0]
	if len(p.Edges) != 1 || p.Edges[0].FK.FromRel != "publication" || p.Edges[0].FK.ToRel != "journal" {
		t.Fatalf("path = %+v", p)
	}
	if p.TotalWeight != 1 {
		t.Fatalf("TotalWeight = %v", p.TotalWeight)
	}
}

func TestExample2UniformWeightsPickShortestPath(t *testing.T) {
	// Example 2: with default weights, publication–domain resolves through
	// conference or journal (3 edges), not through keyword (4 edges).
	gen := NewGenerator(masGraph(t), nil)
	paths, err := gen.Infer([]string{"publication", "domain"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := paths[0]
	if len(p.Edges) != 3 {
		t.Fatalf("edges = %d, want 3: %v", len(p.Edges), p)
	}
	via := strings.Join(p.Relations, "-")
	if !strings.Contains(via, "conference") && !strings.Contains(via, "journal") {
		t.Fatalf("path should go through conference or journal: %v", via)
	}
	if strings.Contains(via, "keyword") {
		t.Fatalf("uniform weights must not pick keyword path: %v", via)
	}
}

func TestExample6LogWeightsPickKeywordPath(t *testing.T) {
	// Example 6: log evidence that publications are joined to domains via
	// keyword makes the 4-edge keyword path win over 3-edge alternatives.
	dice := mapDice{
		dicePair("publication", "publication_keyword"): 0.9,
		dicePair("publication_keyword", "keyword"):     0.9,
		dicePair("keyword", "domain_keyword"):          0.9,
		dicePair("domain_keyword", "domain"):           0.9,
	}
	gen := NewGenerator(masGraph(t), LogWeights(dice))
	paths, err := gen.Infer([]string{"publication", "domain"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := paths[0]
	want := []string{"domain", "domain_keyword", "keyword", "publication", "publication_keyword"}
	got := append([]string(nil), p.Relations...)
	sort.Strings(got)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("relations = %v, want %v (weight %v)", got, want, p.TotalWeight)
	}
	if len(p.Edges) != 4 {
		t.Fatalf("edges = %d, want 4", len(p.Edges))
	}
}

func TestSelfJoinForkExample7(t *testing.T) {
	// Example 7 / Figure 4: two authors of the same publication. The bag
	// contains author twice; the fork must clone author AND writes, sharing
	// publication.
	gen := NewGenerator(masGraph(t), nil)
	paths, err := gen.Infer([]string{"author", "author", "publication"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := paths[0]
	rels := strings.Join(p.Relations, ",")
	if !strings.Contains(rels, "author") || !strings.Contains(rels, "author#2") {
		t.Fatalf("missing author instances: %v", rels)
	}
	if !strings.Contains(rels, "writes") || !strings.Contains(rels, "writes#2") {
		t.Fatalf("missing writes instances: %v", rels)
	}
	count := 0
	for _, r := range p.Relations {
		if BaseRelation(r) == "publication" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("publication must be shared once: %v", rels)
	}
	if len(p.Edges) != 4 {
		t.Fatalf("edges = %d, want 4 (a1-w1, w1-p, a2-w2, w2-p): %v", len(p.Edges), p.Edges)
	}
}

func TestParallelEdgesCite(t *testing.T) {
	// cite has two parallel FK edges to publication (citing, cited). A
	// cite–publication path must pick exactly one.
	gen := NewGenerator(masGraph(t), nil)
	paths, err := gen.Infer([]string{"cite", "publication"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths[0].Edges) != 1 {
		t.Fatalf("best path = %+v", paths[0])
	}
	// With topK > 1 the sibling parallel edge appears as an alternative.
	if len(paths) < 2 {
		t.Fatalf("expected the parallel edge alternative, got %d paths", len(paths))
	}
	if paths[0].Edges[0].FK.FromAttr == paths[1].Edges[0].FK.FromAttr {
		t.Fatalf("alternatives should use different FK columns: %v vs %v", paths[0].Edges, paths[1].Edges)
	}
}

func TestAlternativePathsAreDistinctAndSorted(t *testing.T) {
	gen := NewGenerator(masGraph(t), nil)
	paths, err := gen.Infer([]string{"publication", "domain"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i, p := range paths {
		k := p.canonical()
		if seen[k] {
			t.Fatalf("duplicate path %v", p)
		}
		seen[k] = true
		if i > 0 && p.TotalWeight < paths[i-1].TotalWeight {
			t.Fatalf("paths not sorted by weight: %v", paths)
		}
	}
	if len(paths) < 2 {
		t.Fatalf("expected at least the journal and conference variants, got %d", len(paths))
	}
}

func TestInferErrors(t *testing.T) {
	gen := NewGenerator(masGraph(t), nil)
	if _, err := gen.Infer(nil, 1); err == nil {
		t.Error("empty bag must error")
	}
	if _, err := gen.Infer([]string{"nonexistent"}, 1); err == nil {
		t.Error("unknown relation must error")
	}
	// Disconnected graph.
	g := schema.NewGraph()
	_ = g.AddRelation(schema.Relation{Name: "a", Attributes: []schema.Attribute{{Name: "x", Type: schema.Number, PrimaryKey: true}}})
	_ = g.AddRelation(schema.Relation{Name: "b", Attributes: []schema.Attribute{{Name: "y", Type: schema.Number, PrimaryKey: true}}})
	gen2 := NewGenerator(g, nil)
	if _, err := gen2.Infer([]string{"a", "b"}, 1); err == nil {
		t.Error("disconnected relations must error")
	}
}

func TestPathIsTreeInvariant(t *testing.T) {
	// Property: every returned path is a tree spanning the requested bag:
	// |E| = |V| - 1 and each requested relation appears with the right
	// multiplicity.
	gen := NewGenerator(masGraph(t), nil)
	bags := [][]string{
		{"publication"},
		{"publication", "journal"},
		{"publication", "domain"},
		{"author", "organization"},
		{"author", "publication", "keyword"},
		{"author", "author", "publication"},
		{"journal", "conference"},
		{"organization", "domain"},
		{"author", "author", "author", "publication"},
	}
	for _, bag := range bags {
		paths, err := gen.Infer(bag, 5)
		if err != nil {
			t.Fatalf("%v: %v", bag, err)
		}
		for _, p := range paths {
			if len(p.Edges) != len(p.Relations)-1 {
				t.Errorf("%v: not a tree: %d edges, %d vertices", bag, len(p.Edges), len(p.Relations))
			}
			// Multiplicity check.
			counts := map[string]int{}
			for _, r := range p.Relations {
				counts[BaseRelation(r)]++
			}
			want := map[string]int{}
			for _, r := range bag {
				want[r]++
			}
			for r, c := range want {
				if counts[r] < c {
					t.Errorf("%v: relation %s multiplicity %d < %d in %v", bag, r, counts[r], c, p.Relations)
				}
			}
			// Connectivity via union-find over edges.
			parent := map[string]string{}
			var find func(string) string
			find = func(x string) string {
				if parent[x] == "" || parent[x] == x {
					parent[x] = x
					return x
				}
				r := find(parent[x])
				parent[x] = r
				return r
			}
			for _, e := range p.Edges {
				parent[find(e.FromInst)] = find(e.ToInst)
			}
			if len(p.Relations) > 1 {
				root := find(p.Relations[0])
				for _, r := range p.Relations[1:] {
					if find(r) != root {
						t.Errorf("%v: path not connected: %v", bag, p)
					}
				}
			}
		}
	}
}

func TestScoreFormula(t *testing.T) {
	gen := NewGenerator(masGraph(t), nil)
	paths, _ := gen.Infer([]string{"publication", "domain"}, 1)
	p := paths[0]
	want := p.TotalWeight / float64(len(p.Edges)*len(p.Edges))
	if p.Score != want {
		t.Fatalf("Score = %v, want %v", p.Score, want)
	}
	if p.Goodness != 1/(1+p.TotalWeight) {
		t.Fatalf("Goodness = %v", p.Goodness)
	}
}

func TestLogWeightsFloor(t *testing.T) {
	dice := mapDice{dicePair("a", "b"): 1.0}
	w := LogWeights(dice)
	if got := w("a", "b"); got <= 0 {
		t.Fatalf("weight must stay positive, got %v", got)
	}
	if got := w("x", "y"); got != 1 {
		t.Fatalf("unknown pair weight = %v, want 1", got)
	}
}

// mapCount is a CountSource backed by a fixed map.
type mapCount map[[2]string]int

func (m mapCount) RelationCoOccurrences(a, b string) int {
	if b < a {
		a, b = b, a
	}
	return m[[2]string{a, b}]
}

func TestCountWeights(t *testing.T) {
	src := mapCount{dicePair("a", "b"): 9}
	w := CountWeights(src)
	if got := w("a", "b"); got != 0.1 {
		t.Fatalf("weight = %v, want 0.1", got)
	}
	if got := w("x", "y"); got != 1 {
		t.Fatalf("unknown pair weight = %v, want 1", got)
	}
	// The hub failure mode Dice prevents: a pair with high raw counts is
	// always cheap under CountWeights even when the hub co-occurs with
	// everything (Dice would normalize it away).
	hub := mapCount{dicePair("hub", "x"): 99, dicePair("hub", "y"): 99}
	hw := CountWeights(hub)
	if hw("hub", "x") >= 0.5 || hw("hub", "y") >= 0.5 {
		t.Fatal("hub edges should be cheap under raw counts")
	}
}

func TestBaseRelation(t *testing.T) {
	if BaseRelation("author#2") != "author" || BaseRelation("author") != "author" {
		t.Fatal("BaseRelation")
	}
}

func TestForkTerminatesAtOutgoingFKs(t *testing.T) {
	// Algorithm 4: the fork clones relations that REFERENCE the duplicated
	// vertex (writes) but reattaches to shared targets of outgoing FKs
	// (organization via author.oid). The forked graph therefore contains
	// writes#2 but never organization#2.
	g := masGraph(t)
	_ = g // masGraph has author.oid -> organization
	gen := NewGenerator(g, nil)
	paths, err := gen.Infer([]string{"author", "author", "organization"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		for _, inst := range p.Relations {
			if inst == "organization#2" {
				t.Fatalf("organization must be shared, not cloned: %v", p.Relations)
			}
		}
	}
	// The minimal tree for {author, author, organization} is the shared
	// employer: author–organization–author#2, two edges.
	if len(paths[0].Edges) != 2 {
		t.Fatalf("best path = %+v", paths[0])
	}
}

func TestLogWeightsSteerSelfJoinRoute(t *testing.T) {
	// With uniform weights, {author, author, publication} can route the
	// two authors through organization (equal cost); log evidence that
	// author co-occurs with writes steers the tree through the junction.
	dice := mapDice{
		dicePair("author", "writes"):      0.9,
		dicePair("writes", "publication"): 0.9,
	}
	gen := NewGenerator(masGraph(t), LogWeights(dice))
	paths, err := gen.Infer([]string{"author", "author", "publication"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rels := strings.Join(paths[0].Relations, ",")
	if !strings.Contains(rels, "writes") || !strings.Contains(rels, "writes#2") {
		t.Fatalf("log weights should pick the writes route: %v", rels)
	}
	if strings.Contains(rels, "organization") {
		t.Fatalf("organization shortcut should lose under log weights: %v", rels)
	}
}

func TestTripleSelfJoin(t *testing.T) {
	gen := NewGenerator(masGraph(t), nil)
	paths, err := gen.Infer([]string{"author", "author", "author", "publication"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := paths[0]
	authors := 0
	for _, r := range p.Relations {
		if BaseRelation(r) == "author" {
			authors++
		}
	}
	if authors != 3 {
		t.Fatalf("author instances = %d, want 3: %v", authors, p.Relations)
	}
}

func BenchmarkInferUniform(b *testing.B) {
	gen := NewGenerator(masGraph(b), nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Infer([]string{"publication", "domain"}, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInferSelfJoin(b *testing.B) {
	gen := NewGenerator(masGraph(b), nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Infer([]string{"author", "author", "publication"}, 1); err != nil {
			b.Fatal(err)
		}
	}
}
