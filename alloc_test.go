package templar

import (
	"context"
	"testing"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/keyword"
	"templar/internal/qfg"
	"templar/internal/sqlparse"
	templarpkg "templar/internal/templar"
)

// Allocation-regression gates for the serving hot path. The ceilings are
// roughly 2× the steady-state measurements on the reference machine (see
// BENCH_2026-08-07.json), loose enough to absorb runtime and compiler
// noise but tight enough that reintroducing a per-call copy of the
// candidate table, the Dijkstra state, or the configuration cross-product
// fails loudly. If a deliberate change moves the floor, re-measure with
// `make alloc-check` and adjust the ceiling alongside the change.
const (
	maxAllocsMapKeywords = 200 // measured ~96/op
	maxAllocsInferJoins  = 30  // measured ~2/op (cache hit)
	maxAllocsTranslate   = 600 // measured ~272/op
)

func allocSystem(t testing.TB) (*templarpkg.System, *datasets.Dataset) {
	ds := datasets.MAS()
	entries := make([]sqlparse.LogEntry, 0, len(ds.Tasks))
	for _, task := range ds.Tasks {
		q, err := sqlparse.Parse(task.Gold)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
	}
	graph, err := qfg.Build(entries, fragment.NoConstOp)
	if err != nil {
		t.Fatal(err)
	}
	sys := templarpkg.New(ds.DB, embedding.New(), graph, templarpkg.Options{
		Keyword: keyword.Options{K: 5, Lambda: 0.8},
		LogJoin: true,
	})
	return sys, ds
}

// TestMapKeywordsAllocCeiling pins steady-state MAPKEYWORDS allocations:
// after the first call has warmed the candidate index and similarity
// cache, the per-call cost is the result slice plus the configuration
// rows — the enumeration scratch all comes from the arena pool.
func TestMapKeywordsAllocCeiling(t *testing.T) {
	sys, ds := allocSystem(t)
	ctx := context.Background()
	kws := ds.Tasks[0].Keywords
	if _, err := sys.MapKeywords(ctx, kws, nil); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := sys.MapKeywords(ctx, kws, nil); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("MapKeywords: %.1f allocs/op (ceiling %d)", avg, maxAllocsMapKeywords)
	if avg > maxAllocsMapKeywords {
		t.Fatalf("MapKeywords allocates %.1f/op, ceiling is %d — a hot-path copy crept back in", avg, maxAllocsMapKeywords)
	}
}

// TestInferJoinsAllocCeiling pins steady-state INFERJOINS allocations:
// a warm relation bag answers from the generator's inference cache, so
// the per-call cost is the trimmed top-level path slice and the key
// scratch, not a Steiner expansion.
func TestInferJoinsAllocCeiling(t *testing.T) {
	sys, _ := allocSystem(t)
	ctx := context.Background()
	bag := []string{"publication", "author", "writes"}
	if _, err := sys.InferJoins(ctx, bag, nil); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := sys.InferJoins(ctx, bag, nil); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("InferJoins: %.1f allocs/op (ceiling %d)", avg, maxAllocsInferJoins)
	if avg > maxAllocsInferJoins {
		t.Fatalf("InferJoins allocates %.1f/op, ceiling is %d — the inference cache or path trim regressed", avg, maxAllocsInferJoins)
	}
}

// TestTranslateAllocCeiling pins the whole in-process pipeline
// (MAPKEYWORDS → INFERJOINS → SQL construction → ranking) at steady
// state, the floor under BenchmarkTranslateEndToEnd's serve-layer number.
func TestTranslateAllocCeiling(t *testing.T) {
	sys, _ := allocSystem(t)
	ctx := context.Background()
	kws, err := keyword.ParseSpec("papers:select;Databases:where")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Translate(ctx, kws, nil); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(30, func() {
		if _, err := sys.Translate(ctx, kws, nil); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("Translate: %.1f allocs/op (ceiling %d)", avg, maxAllocsTranslate)
	if avg > maxAllocsTranslate {
		t.Fatalf("Translate allocates %.1f/op, ceiling is %d — the end-to-end allocation war regressed", avg, maxAllocsTranslate)
	}
}
