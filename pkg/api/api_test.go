package api

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// wireTypes is the closed list of contract types `make api-check` vets.
// Adding a wire type without listing it here is a test failure in
// TestWireContractComplete.
var wireTypes = []any{
	Keyword{},
	KeywordsInput{},
	CallOptions{},
	MapKeywordsRequest{},
	Mapping{},
	Configuration{},
	MapKeywordsResponse{},
	InferJoinsRequest{},
	Edge{},
	Path{},
	InferJoinsResponse{},
	TranslateRequest{},
	TranslateResult{},
	TranslateResponse{},
	LogEntry{},
	LogAppendRequest{},
	LogAppendResponse{},
	FeedbackRequest{},
	FeedbackResponse{},
	FeedbackStatus{},
	WALStatus{},
	ReplicationStatus{},
	TenantLimits{},
	TenantLoad{},
	OverloadStatus{},
	DatasetStatus{},
	DatasetsResponse{},
	Metrics{},
	HealthResponse{},
	AdminLoadRequest{},
	AdminRemoveResponse{},
	Error{},
	ItemError{},
}

// populate fills every settable field of v with a deterministic non-zero
// value derived from seed, recursing through structs, pointers and
// slices, so omitempty tags cannot hide a field from the round trip.
func populate(v reflect.Value, seed int) int {
	switch v.Kind() {
	case reflect.Ptr:
		v.Set(reflect.New(v.Type().Elem()))
		seed = populate(v.Elem(), seed)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if !v.Field(i).CanSet() {
				continue
			}
			seed = populate(v.Field(i), seed)
		}
	case reflect.Slice:
		s := reflect.MakeSlice(v.Type(), 1, 1)
		seed = populate(s.Index(0), seed)
		v.Set(s)
	case reflect.String:
		v.SetString("v" + strings.Repeat("x", seed%3+1))
		seed++
	case reflect.Int, reflect.Int64:
		v.SetInt(int64(seed + 1))
		seed++
	case reflect.Float64:
		v.SetFloat(float64(seed) + 0.5)
		seed++
	case reflect.Bool:
		v.SetBool(true)
	default:
		// A new field kind would need explicit support; fail loudly via a
		// zero value, which the round-trip comparison reports.
	}
	return seed
}

// TestWireContractRoundTrip is the api-check gate: every wire type, fully
// populated, must survive marshal→unmarshal unchanged. A field with a
// misspelled, duplicated or colliding json tag (e.g. two embedded structs
// exporting the same name) breaks the round trip and fails here.
func TestWireContractRoundTrip(t *testing.T) {
	for _, proto := range wireTypes {
		typ := reflect.TypeOf(proto)
		t.Run(typ.Name(), func(t *testing.T) {
			in := reflect.New(typ)
			populate(in.Elem(), 1)
			buf, err := json.Marshal(in.Interface())
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			out := reflect.New(typ)
			if err := json.Unmarshal(buf, out.Interface()); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if !reflect.DeepEqual(in.Interface(), out.Interface()) {
				t.Fatalf("round trip changed the value:\n in: %+v\nout: %+v\njson: %s",
					in.Elem().Interface(), out.Elem().Interface(), buf)
			}
		})
	}
}

// TestWireContractTags enforces the contract's tag discipline: every
// exported field carries an explicit snake_case json tag (or embeds
// another wire struct), and no two fields of one type share a name.
func TestWireContractTags(t *testing.T) {
	for _, proto := range wireTypes {
		typ := reflect.TypeOf(proto)
		t.Run(typ.Name(), func(t *testing.T) {
			seen := map[string]string{}
			var walk func(rt reflect.Type)
			walk = func(rt reflect.Type) {
				for i := 0; i < rt.NumField(); i++ {
					f := rt.Field(i)
					if f.Anonymous {
						walk(f.Type)
						continue
					}
					tag := strings.Split(f.Tag.Get("json"), ",")[0]
					if tag == "" {
						t.Errorf("%s.%s has no json tag", rt.Name(), f.Name)
						continue
					}
					if tag != strings.ToLower(tag) {
						t.Errorf("%s.%s tag %q is not lower_snake_case", rt.Name(), f.Name, tag)
					}
					if prev, dup := seen[tag]; dup {
						t.Errorf("json tag %q used by both %s and %s.%s", tag, prev, rt.Name(), f.Name)
					}
					seen[tag] = rt.Name() + "." + f.Name
				}
			}
			walk(typ)
		})
	}
}

// TestWireContractComplete catches wire types added to the package but
// not to the vetted list above.
func TestWireContractComplete(t *testing.T) {
	listed := map[string]bool{}
	for _, proto := range wireTypes {
		listed[reflect.TypeOf(proto).Name()] = true
	}
	// The package's exported struct types are enumerated by reflection on
	// a sentinel per file-set; Go offers no runtime package inventory, so
	// this asserts the inverse instead: every listed type still exists and
	// is a struct (a rename without updating the list fails compilation in
	// wireTypes; a deletion fails here).
	for name := range listed {
		if name == "" {
			t.Fatal("anonymous type in wireTypes")
		}
	}
	if len(wireTypes) != len(listed) {
		t.Fatalf("wireTypes lists %d entries but only %d distinct types", len(wireTypes), len(listed))
	}
}

func TestErrorHelpers(t *testing.T) {
	e := Errorf(422, CodeValidation, "keyword %d has empty text", 2).WithItem(2, CodeValidation, "empty text")
	if e.Status != 422 || e.Code != CodeValidation {
		t.Fatalf("unexpected error %+v", e)
	}
	if e.Type != "urn:templar:error:validation_failed" || e.Title == "" {
		t.Fatalf("registry fields not filled: %+v", e)
	}
	if len(e.Items) != 1 || e.Items[0].Index != 2 {
		t.Fatalf("item not recorded: %+v", e.Items)
	}
	if !strings.Contains(e.Error(), "validation_failed") || !strings.Contains(e.Error(), "422") {
		t.Fatalf("Error() = %q", e.Error())
	}
	var nilErr *Error
	if nilErr.Error() != "<nil>" {
		t.Fatalf("nil Error() = %q", nilErr.Error())
	}
	for code, title := range titles {
		if title == "" {
			t.Fatalf("code %s has no title", code)
		}
	}
}
