package api

// Keyword is one parsed NLQ keyword on the wire.
type Keyword struct {
	Text string `json:"text"`
	// Context is "select", "where" or "from".
	Context string `json:"context"`
	// Op is the comparison operator for numeric WHERE keywords.
	Op string `json:"op,omitempty"`
	// Agg is an aggregate (COUNT, SUM, AVG, MIN, MAX) for SELECT keywords.
	Agg string `json:"agg,omitempty"`
	// GroupBy marks the mapped attribute for grouping.
	GroupBy bool `json:"group_by,omitempty"`
}

// KeywordsInput carries keywords either structured or as a compact
// keyword spec string ("papers:select;Databases:where"); exactly one of
// the two must be set.
type KeywordsInput struct {
	Keywords []Keyword `json:"keywords,omitempty"`
	Spec     string    `json:"spec,omitempty"`
}

// Obscurity levels a caller may assert via CallOptions.Obscurity. The
// level is baked into the serving engine's compiled query-fragment graph,
// so the option is an assertion, not a switch: a request naming a level
// the engine was not mined at fails with CodeValidation instead of
// silently scoring against the wrong fragment forms.
const (
	ObscurityFull      = "full"
	ObscurityNoConst   = "no_const"
	ObscurityNoConstOp = "no_const_op"
)

// CallOptions are the per-request engine knobs shared by the v2 query
// endpoints. The zero value means "server defaults" for every field.
type CallOptions struct {
	// MaxCandidates overrides κ: how many candidate mappings are kept per
	// keyword after pruning (0 = engine default).
	MaxCandidates int `json:"max_candidates,omitempty"`
	// MaxConfigurations caps the keyword-mapping configuration
	// enumeration (0 = engine default).
	MaxConfigurations int `json:"max_configurations,omitempty"`
	// Obscurity asserts the fragment obscurity level the request expects
	// ("full", "no_const", "no_const_op"; empty = whatever the engine was
	// mined at). A mismatch is a CodeValidation error.
	Obscurity string `json:"obscurity,omitempty"`
}

// MapKeywordsRequest is the body of POST /v2/{dataset}/map-keywords.
type MapKeywordsRequest struct {
	KeywordsInput
	// TopK caps the returned configurations (0 = all).
	TopK int `json:"top_k,omitempty"`
	CallOptions
}

// Mapping is one keyword→fragment mapping on the wire.
type Mapping struct {
	Keyword   string  `json:"keyword"`
	Kind      string  `json:"kind"` // "relation", "attribute", "predicate"
	Relation  string  `json:"relation"`
	Attribute string  `json:"attribute,omitempty"`
	Agg       string  `json:"agg,omitempty"`
	GroupBy   bool    `json:"group_by,omitempty"`
	Op        string  `json:"op,omitempty"`
	Value     string  `json:"value,omitempty"`
	Fragment  string  `json:"fragment"`
	Sim       float64 `json:"sim"`
}

// Configuration is one ranked keyword-mapping configuration.
type Configuration struct {
	Mappings []Mapping `json:"mappings"`
	SimScore float64   `json:"sim_score"`
	QFGScore float64   `json:"qfg_score"`
	Score    float64   `json:"score"`
}

// MapKeywordsResponse is the body of a successful map-keywords call.
type MapKeywordsResponse struct {
	Configurations []Configuration `json:"configurations"`
}

// InferJoinsRequest is the body of POST /v2/{dataset}/infer-joins.
// Relations is a bag: repeating a relation requests self-join forking.
type InferJoinsRequest struct {
	Relations []string `json:"relations"`
	// TopK caps the returned paths (0 = route default of 3).
	TopK int `json:"top_k,omitempty"`
}

// Edge is one join edge ("author.oid = organization.oid").
type Edge struct {
	From   string  `json:"from"`
	To     string  `json:"to"`
	Join   string  `json:"join"`
	Weight float64 `json:"weight"`
}

// Path is one inferred join path.
type Path struct {
	Relations   []string `json:"relations"`
	Edges       []Edge   `json:"edges"`
	TotalWeight float64  `json:"total_weight"`
	Score       float64  `json:"score"`
	Goodness    float64  `json:"goodness"`
}

// InferJoinsResponse is the body of a successful infer-joins call.
type InferJoinsResponse struct {
	Paths []Path `json:"paths"`
}

// TranslateRequest is the body of POST /v2/{dataset}/translate: a batch
// of keyword queries translated concurrently over the server's worker
// pool. The options apply to every query of the batch.
type TranslateRequest struct {
	Queries []KeywordsInput `json:"queries"`
	// TopConfigs bounds how many configurations are tried for SQL
	// construction per query (0 = engine default).
	TopConfigs int `json:"top_configs,omitempty"`
	// TopPaths bounds how many join paths are considered per
	// configuration (0 = engine default).
	TopPaths int `json:"top_paths,omitempty"`
	CallOptions
}

// TranslateResult is one batch entry: a translation or a structured
// per-item error (one bad query never fails its batch siblings).
type TranslateResult struct {
	SQL      string         `json:"sql,omitempty"`
	Rendered string         `json:"rendered,omitempty"`
	Score    float64        `json:"score,omitempty"`
	Tie      bool           `json:"tie,omitempty"`
	Config   *Configuration `json:"config,omitempty"`
	Path     *Path          `json:"path,omitempty"`
	Error    *Error         `json:"error,omitempty"`
}

// TranslateResponse is the body of a successful translate call.
type TranslateResponse struct {
	Results []TranslateResult `json:"results"`
}

// LogEntry is one SQL query appended to the live log.
type LogEntry struct {
	SQL string `json:"sql"`
	// Count is the query's multiplicity (how many times it was issued);
	// values < 1 default to 1. Ignored for session appends.
	Count int `json:"count,omitempty"`
}

// LogAppendRequest is the body of POST /v2/{dataset}/log. With Session
// set, the queries are folded as one ordered user session (cross-query
// fragment pairs gain decayed co-occurrence evidence); otherwise each
// query is an independent log entry.
type LogAppendRequest struct {
	Queries []LogEntry `json:"queries"`
	Session bool       `json:"session,omitempty"`
	// Decay is the per-step session decay in (0, 1]; 0 defaults to 0.5.
	Decay float64 `json:"decay,omitempty"`
}

// LogAppendResponse reports the log shape after a successful append.
type LogAppendResponse struct {
	Appended     int `json:"appended"`
	LogQueries   int `json:"log_queries"`
	LogFragments int `json:"log_fragments"`
	LogEdges     int `json:"log_edges"`
	// WALSeq is the write-ahead-log sequence number the append was made
	// durable at, when the dataset has a WAL attached (0 otherwise). A
	// response carrying a non-zero WALSeq is a durability receipt: the
	// append survives a crash from this point on.
	WALSeq int64 `json:"wal_seq,omitempty"`
}

// Feedback verdicts: a client's judgement of a served translation,
// submitted on POST /v2/{dataset}/feedback.
const (
	// VerdictAccepted: the served SQL was right; its queries are folded
	// into the live log with the submission's confidence weight.
	VerdictAccepted = "accepted"
	// VerdictRejected: the served SQL was wrong and no correction is
	// available; recorded for counters only, never appended.
	VerdictRejected = "rejected"
	// VerdictCorrected: the served SQL was wrong and CorrectedSQL is what
	// the user actually wanted; the correction is appended instead.
	VerdictCorrected = "corrected"
)

// FeedbackRequest is the body of POST /v2/{dataset}/feedback: a verdict
// on a translation the server recently served. RequestID must be the
// X-Request-ID the translate response carried (clients may also supply
// their own ID on the translate call; the middleware honors incoming IDs
// up to 64 characters).
type FeedbackRequest struct {
	RequestID string `json:"request_id"`
	// Verdict is one of the Verdict* constants.
	Verdict string `json:"verdict"`
	// CorrectedSQL is the SQL the user actually wanted; required for (and
	// only meaningful with) VerdictCorrected. It must parse as a supported
	// SELECT query or the submission fails with invalid_sql.
	CorrectedSQL string `json:"corrected_sql,omitempty"`
	// Weight is the confidence multiplicity the applied queries are
	// appended with (how strongly this verdict should outrank mined
	// history); values < 1 default to 1, capped server-side.
	Weight int `json:"weight,omitempty"`
	// Session folds an accepted multi-query translation batch as one
	// ordered session (decayed cross-query evidence) instead of
	// independent entries. Ignored for corrections.
	Session bool `json:"session,omitempty"`
	// Decay is the per-step session decay in (0, 1]; 0 defaults to 0.5.
	// Only meaningful with Session.
	Decay float64 `json:"decay,omitempty"`
}

// FeedbackResponse reports what a feedback submission did. Applied is 0
// for rejections (recorded, never appended); for accepted/corrected
// verdicts the log fields mirror LogAppendResponse, and a non-zero
// WALSeq is the same durability receipt a direct log append gets.
type FeedbackResponse struct {
	RequestID string `json:"request_id"`
	Verdict   string `json:"verdict"`
	// Applied is how many queries the verdict appended to the live log.
	Applied      int `json:"applied"`
	LogQueries   int `json:"log_queries"`
	LogFragments int `json:"log_fragments"`
	LogEdges     int `json:"log_edges"`
	// WALSeq is the write-ahead-log sequence the applied append was made
	// durable at (0 for rejections or WAL-less tenants).
	WALSeq int64 `json:"wal_seq,omitempty"`
}

// FeedbackStatus is one dataset's translation-ledger and verdict
// counters, reported on /healthz and the dataset listings once the
// tenant has served feedback-eligible traffic.
type FeedbackStatus struct {
	// LedgerSize/LedgerCapacity describe the ring of served translations
	// still eligible for a verdict.
	LedgerSize     int `json:"ledger_size"`
	LedgerCapacity int `json:"ledger_capacity"`
	// Recorded counts translations entered into the ledger; Evicted counts
	// entries displaced by ring wrap before any verdict arrived.
	Recorded int64 `json:"recorded"`
	Evicted  int64 `json:"evicted,omitempty"`
	// Accepted/Rejected/Corrected count applied verdicts by kind.
	Accepted  int64 `json:"accepted,omitempty"`
	Rejected  int64 `json:"rejected,omitempty"`
	Corrected int64 `json:"corrected,omitempty"`
	// Conflicts counts double-submissions refused with feedback_conflict;
	// Unknown counts submissions for unrecorded or evicted request IDs.
	Conflicts int64 `json:"conflicts,omitempty"`
	Unknown   int64 `json:"unknown,omitempty"`
}

// WALStatus is one dataset's write-ahead-log counters, reported on
// /healthz and the dataset listings when a WAL is attached.
type WALStatus struct {
	// Seq is the last acknowledged sequence number.
	Seq int64 `json:"seq"`
	// Records counts records in the live segment (replayed and new).
	Records int64 `json:"records"`
	// Bytes is the live segment's size on disk.
	Bytes int64 `json:"bytes"`
	// SyncPolicy is "always" (fsync per append) or "interval".
	SyncPolicy string `json:"sync_policy"`
	// LastSyncUnixMS is when the log was last fsynced (0 = never).
	LastSyncUnixMS int64 `json:"last_sync_unix_ms,omitempty"`
	// Compactions counts completed WAL-into-snapshot compactions.
	Compactions int64 `json:"compactions"`
	// LastCompactionUnixMS is when the last compaction completed (0 =
	// never).
	LastCompactionUnixMS int64 `json:"last_compaction_unix_ms,omitempty"`
	// RecoveredRecords is how many records boot replayed from disk.
	RecoveredRecords int64 `json:"recovered_records,omitempty"`
	// DroppedBytes is how many torn-tail bytes boot truncated.
	DroppedBytes int64 `json:"dropped_bytes,omitempty"`
}

// ReplicationStatus is a follower replica's position relative to its
// primary, reported on /healthz and the dataset listings for tenants
// running in follow mode (absent on primaries and standalone servers).
type ReplicationStatus struct {
	// Role is "follower" for a replica tenant.
	Role string `json:"role"`
	// Primary is the base URL of the primary this follower tails.
	Primary string `json:"primary,omitempty"`
	// LastAppliedSeq is the last WAL sequence folded into the serving
	// engine: the follower answers reads at exactly this position.
	LastAppliedSeq int64 `json:"last_applied_seq"`
	// PrimarySeq is the primary's last assigned sequence as of the most
	// recent successful tail poll.
	PrimarySeq int64 `json:"primary_seq"`
	// Lag is PrimarySeq − LastAppliedSeq at the last poll: how many
	// acknowledged appends the replica has not applied yet.
	Lag int64 `json:"lag"`
	// Bootstraps counts snapshot bootstraps, the initial one included; a
	// value above 1 means the follower fell behind a compaction and
	// re-bootstrapped.
	Bootstraps int64 `json:"bootstraps,omitempty"`
	// RejectedBatches counts tail batches refused before applying anything
	// (checksum mismatch, broken sequence continuity); each was re-fetched.
	RejectedBatches int64 `json:"rejected_batches,omitempty"`
	// LastPollUnixMS is when the follower last heard from the primary.
	LastPollUnixMS int64 `json:"last_poll_unix_ms,omitempty"`
	// LastError is the most recent tail/bootstrap failure, cleared on the
	// next successful poll.
	LastError string `json:"last_error,omitempty"`
}

// TenantLimits bounds one dataset's admitted traffic: a token-bucket
// request rate plus an in-flight concurrency quota. The zero value of a
// field means "unlimited" for that dimension. Set server-wide defaults
// with templar-serve's -tenant-rps/-tenant-burst/-tenant-max-inflight
// flags and per-dataset overrides with PUT /admin/datasets/{name}/limits.
type TenantLimits struct {
	// PerSecond is the sustained admitted request rate (token refill).
	PerSecond float64 `json:"per_second,omitempty"`
	// Burst is the token-bucket capacity — how far above the sustained
	// rate a short spike may go (0 with PerSecond set = max(1, ceil(rate))).
	Burst int `json:"burst,omitempty"`
	// MaxInFlight caps the dataset's concurrently admitted requests.
	MaxInFlight int `json:"max_in_flight,omitempty"`
}

// TenantLoad is one dataset's admission-control state, reported beside
// the engine stats on the dataset listings and /healthz.
type TenantLoad struct {
	// InFlight is how many admitted requests the dataset is serving now.
	InFlight int64 `json:"in_flight"`
	// Admitted counts requests admitted against this dataset since boot.
	Admitted int64 `json:"admitted"`
	// ShedRate counts requests shed by the token-bucket rate limit.
	ShedRate int64 `json:"shed_rate,omitempty"`
	// ShedInFlight counts requests shed by the in-flight quota.
	ShedInFlight int64 `json:"shed_in_flight,omitempty"`
	// Limits is the dataset's effective limit set (absent = unlimited).
	Limits *TenantLimits `json:"limits,omitempty"`
}

// OverloadStatus is the server-wide admission-control state on /healthz:
// the in-flight bound, the current admitted load, and how many requests
// each cost class has shed since boot (see docs/OPERATIONS.md for the
// shedding order).
type OverloadStatus struct {
	// MaxInFlight is the server-wide admitted-request bound (0 = unbounded).
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// InFlight is the admitted requests executing right now. Health probes
	// and admin calls are exempt from admission and not counted here.
	InFlight int64 `json:"in_flight"`
	// Admitted counts requests admitted since boot.
	Admitted int64 `json:"admitted"`
	// Draining reports that the server stopped admitting new work and is
	// waiting for in-flight requests before exiting.
	Draining bool `json:"draining,omitempty"`
	// ShedTranslate/ShedLog/ShedQuery count 429-shed requests per cost
	// class (translate sheds first, then log appends, then map-keywords /
	// infer-joins); ShedDraining counts 503s refused during drain.
	ShedTranslate int64 `json:"shed_translate,omitempty"`
	ShedLog       int64 `json:"shed_log,omitempty"`
	ShedQuery     int64 `json:"shed_query,omitempty"`
	ShedDraining  int64 `json:"shed_draining,omitempty"`
}

// DatasetStatus is one hosted dataset's engine stats, shared by the
// health, dataset-listing and admin bodies.
type DatasetStatus struct {
	Name string `json:"name"`
	// Default marks the dataset the legacy unprefixed /v1/* routes alias.
	Default bool `json:"default,omitempty"`
	// Source is where the engine came from: "built" (log re-mine),
	// "store" (packed snapshot) or "preloaded".
	Source    string `json:"source,omitempty"`
	Relations int    `json:"relations"`
	// LiveLog reports whether POST /v2/{dataset}/log appends are enabled.
	LiveLog bool `json:"live_log"`
	// LogQueries/LogFragments/LogEdges describe the QFG snapshot currently
	// serving requests (all zero for a log-free baseline).
	LogQueries   int `json:"log_queries"`
	LogFragments int `json:"log_fragments"`
	LogEdges     int `json:"log_edges"`
	// LoadMillis is how long building or loading the engine took.
	LoadMillis float64 `json:"load_ms,omitempty"`
	// WAL reports the dataset's write-ahead-log counters when one is
	// attached; absent for memory-only tenants.
	WAL *WALStatus `json:"wal,omitempty"`
	// Load reports the dataset's admission-control counters and effective
	// per-tenant limits.
	Load *TenantLoad `json:"load,omitempty"`
	// Repl reports the tenant's replication position when it is a follower
	// replica; absent on primaries.
	Repl *ReplicationStatus `json:"repl,omitempty"`
	// Feedback reports the dataset's translation-ledger and verdict
	// counters once feedback-eligible traffic has been served.
	Feedback *FeedbackStatus `json:"feedback,omitempty"`
}

// DatasetsResponse is the body of GET /v2/datasets and GET
// /admin/datasets: every dataset the server hosts.
type DatasetsResponse struct {
	Datasets []DatasetStatus `json:"datasets"`
}

// Metrics is the serving-layer request telemetry reported on /healthz,
// accumulated by the middleware stack since process start.
type Metrics struct {
	// Requests counts every HTTP request that reached the route table.
	Requests int64 `json:"requests"`
	// InFlight is how many admitted requests are being served right now.
	// Health probes and admin calls are exempt from admission accounting,
	// so a /healthz response never counts itself here.
	InFlight int64 `json:"in_flight"`
	// ClientErrors / ServerErrors count 4xx and 5xx responses.
	ClientErrors int64 `json:"client_errors"`
	ServerErrors int64 `json:"server_errors"`
	// EncodeFailures counts responses whose body failed to marshal and
	// were degraded to a 500 problem document. Always a server-side bug;
	// nonzero values deserve a look at the server log.
	EncodeFailures int64 `json:"encode_failures,omitempty"`
	// AvgLatencyMillis is the mean wall-clock request latency.
	AvgLatencyMillis float64 `json:"avg_latency_ms"`
}

// HealthResponse is the body of GET /healthz. The top-level dataset
// fields mirror the default dataset for single-tenant clients; Datasets
// lists every hosted engine. Status is "ok" while serving and "draining"
// (with HTTP 503, so load balancers stop routing) during graceful
// shutdown — health probes themselves are never shed.
type HealthResponse struct {
	Status    string `json:"status"`
	Dataset   string `json:"dataset"`
	Relations int    `json:"relations"`
	Workers   int    `json:"workers"`
	// LiveLog reports whether log appends are enabled.
	LiveLog bool `json:"live_log"`
	// LogQueries/LogFragments/LogEdges describe the QFG snapshot currently
	// serving requests (all zero for a log-free baseline).
	LogQueries   int `json:"log_queries"`
	LogFragments int `json:"log_fragments"`
	LogEdges     int `json:"log_edges"`
	// WAL reports the default dataset's write-ahead-log counters when one
	// is attached, mirroring DatasetStatus.WAL.
	WAL *WALStatus `json:"wal,omitempty"`
	// Repl mirrors the default dataset's replication position when this
	// server is a follower replica, like DatasetStatus.Repl.
	Repl *ReplicationStatus `json:"repl,omitempty"`
	// Feedback mirrors the default dataset's translation-ledger counters,
	// like DatasetStatus.Feedback.
	Feedback *FeedbackStatus `json:"feedback,omitempty"`
	// Datasets lists every hosted dataset (multi-tenant view).
	Datasets []DatasetStatus `json:"datasets,omitempty"`
	// Metrics is the middleware request telemetry.
	Metrics *Metrics `json:"metrics,omitempty"`
	// Overload is the server-wide admission-control state.
	Overload *OverloadStatus `json:"overload,omitempty"`
}

// AdminLoadRequest is the body of POST /admin/datasets: the name of a
// dataset the server's loader should materialize (from its snapshot
// store when packed, by re-mining the log otherwise).
type AdminLoadRequest struct {
	Name string `json:"name"`
}

// AdminRemoveResponse is the body of a successful DELETE
// /admin/datasets/{name}.
type AdminRemoveResponse struct {
	Removed string `json:"removed"`
}
