package api

import "fmt"

// ProblemContentType is the media type v2 error bodies are written with
// (RFC 7807, "Problem Details for HTTP APIs").
const ProblemContentType = "application/problem+json"

// Error codes: the machine-readable vocabulary of the v2 contract. The
// HTTP status carries the transport semantics; Code names the exact
// failure so clients can branch without parsing prose.
const (
	// CodeBadRequest: the body is not syntactically valid JSON for the
	// endpoint (400).
	CodeBadRequest = "bad_request"
	// CodeValidation: the body parsed but a field is semantically invalid
	// — no keywords, both spec and structured forms, unknown context,
	// obscurity mismatch, malformed batch entry (422).
	CodeValidation = "validation_failed"
	// CodeUnprocessable: the request is well-formed but the engine cannot
	// answer it — unmappable keyword, unknown or disconnected relation,
	// no feasible configuration (422).
	CodeUnprocessable = "unprocessable"
	// CodeBodyTooLarge: the request body exceeds the server's byte cap
	// (413).
	CodeBodyTooLarge = "body_too_large"
	// CodeBatchTooLarge: a batch endpoint received more items than the
	// server accepts per request (422).
	CodeBatchTooLarge = "batch_too_large"
	// CodeUnknownDataset: the {dataset} path segment names no hosted
	// engine (404).
	CodeUnknownDataset = "unknown_dataset"
	// CodeLogFrozen: log appends are disabled because the engine serves a
	// frozen log (409).
	CodeLogFrozen = "log_frozen"
	// CodeConflict: an admin mutation lost a race or targets a protected
	// tenant (409).
	CodeConflict = "conflict"
	// CodeUnauthorized: the /admin routes require a bearer token (401).
	CodeUnauthorized = "unauthorized"
	// CodeNotConfigured: the endpoint exists but the server was started
	// without the capability (e.g. no dataset loader) (501).
	CodeNotConfigured = "not_configured"
	// CodeOverloaded: the server-wide admission bound is reached and the
	// request's cost class is being shed; retry after the Retry-After
	// header's delay, ideally against another replica (429).
	CodeOverloaded = "overloaded"
	// CodeRateLimited: the target dataset's per-tenant rate or in-flight
	// quota is exhausted — the tenant, not the server, is hot. Retry after
	// the Retry-After header's delay (429).
	CodeRateLimited = "rate_limited"
	// CodeDraining: the server is shutting down gracefully and admits no
	// new work; retry against another replica (503).
	CodeDraining = "draining"
	// CodeNotPrimary: the request mutates state but this server is a
	// read-only follower replica; it is served as a 307 redirect whose
	// Location is the same path on the primary, so SDK clients follow it
	// transparently (the append was never applied here).
	CodeNotPrimary = "not_primary"
	// CodeWALGap: a replication tail asked to resume at a sequence the
	// primary has compacted away — the follower must re-bootstrap from a
	// fresh snapshot instead of tailing (410).
	CodeWALGap = "wal_gap"
	// CodeUnknownRequestID: feedback referenced a request ID the dataset's
	// translation ledger never recorded, or that has already been evicted
	// by newer traffic — the verdict arrived too late to apply (404).
	CodeUnknownRequestID = "unknown_request_id"
	// CodeFeedbackConflict: a verdict for this request ID was already
	// applied, or a concurrent submission holds it right now — each served
	// translation accepts exactly one verdict (409).
	CodeFeedbackConflict = "feedback_conflict"
	// CodeInvalidSQL: the corrected_sql of a feedback submission does not
	// parse as a supported SELECT query, so no fragments could be mined
	// from it (422).
	CodeInvalidSQL = "invalid_sql"
	// CodeInternal: an unexpected server-side failure (500).
	CodeInternal = "internal"
)

// Error is the uniform v2 error body, an RFC-7807 problem document with a
// machine-readable Code. It implements the error interface, so SDK
// callers branch on it with errors.As:
//
//	var apiErr *api.Error
//	if errors.As(err, &apiErr) && apiErr.Code == api.CodeUnknownDataset { ... }
type Error struct {
	// Type is the RFC-7807 problem type URI; Templar uses a stable
	// urn:templar:error:<code> form.
	Type string `json:"type,omitempty"`
	// Title is the short human summary of the code (stable per code).
	Title string `json:"title"`
	// Status is the HTTP status the error was (or should be) served with.
	Status int `json:"status"`
	// Code is the machine-readable error code (the Code* constants).
	Code string `json:"code"`
	// Detail is the human-readable explanation of this occurrence.
	Detail string `json:"detail,omitempty"`
	// Dataset names the engine the request targeted, when resolved.
	Dataset string `json:"dataset,omitempty"`
	// RequestID echoes the X-Request-ID the middleware assigned, so an
	// error report can be matched to the server's access log.
	RequestID string `json:"request_id,omitempty"`
	// Items carries per-item failures for batch endpoints.
	Items []ItemError `json:"items,omitempty"`
}

// ItemError locates one failed item inside a batch request.
type ItemError struct {
	// Index is the item's position in the request batch.
	Index int `json:"index"`
	// Code refines the failure for this item (defaults to the outer Code).
	Code string `json:"code,omitempty"`
	// Detail is the human-readable explanation.
	Detail string `json:"detail"`
}

// titles maps codes to their stable RFC-7807 titles.
var titles = map[string]string{
	CodeBadRequest:       "malformed request body",
	CodeValidation:       "request validation failed",
	CodeUnprocessable:    "engine could not answer the request",
	CodeBodyTooLarge:     "request body too large",
	CodeBatchTooLarge:    "batch exceeds the per-request cap",
	CodeUnknownDataset:   "unknown dataset",
	CodeLogFrozen:        "log appends disabled",
	CodeConflict:         "conflicting state",
	CodeUnauthorized:     "authorization required",
	CodeNotConfigured:    "capability not configured",
	CodeOverloaded:       "server overloaded, request shed",
	CodeRateLimited:      "per-tenant quota exhausted",
	CodeDraining:         "server draining for shutdown",
	CodeNotPrimary:       "read-only follower, write to the primary",
	CodeWALGap:           "requested WAL range compacted away",
	CodeInternal:         "internal server error",
	CodeUnknownRequestID: "request id not in the translation ledger",
	CodeFeedbackConflict: "verdict already submitted for this request id",
	CodeInvalidSQL:       "corrected SQL does not parse",
}

// NewError builds a problem document for a code, filling Type and Title
// from the code's stable registry entry.
func NewError(status int, code, detail string) *Error {
	return &Error{
		Type:   "urn:templar:error:" + code,
		Title:  titles[code],
		Status: status,
		Code:   code,
		Detail: detail,
	}
}

// Errorf is NewError with a formatted detail.
func Errorf(status int, code, format string, args ...any) *Error {
	return NewError(status, code, fmt.Sprintf(format, args...))
}

// Error renders "code: detail (status)" for log lines and test failures.
func (e *Error) Error() string {
	if e == nil {
		return "<nil>"
	}
	d := e.Detail
	if d == "" {
		d = e.Title
	}
	return fmt.Sprintf("%s: %s (HTTP %d)", e.Code, d, e.Status)
}

// WithItem appends a per-item failure and returns the error for chaining.
func (e *Error) WithItem(index int, code, detail string) *Error {
	e.Items = append(e.Items, ItemError{Index: index, Code: code, Detail: detail})
	return e
}
