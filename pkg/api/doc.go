// Package api is Templar's public wire contract: every request and
// response type the HTTP serving layer (internal/serve) speaks, plus the
// structured error model shared by all endpoints.
//
// The package is deliberately free of engine types — it depends only on
// encoding/json-friendly Go values — so any program can marshal requests
// and unmarshal responses without linking the engine. The Go SDK
// (templar/pkg/client) is a thin typed veneer over these shapes.
//
// # Versioning
//
// The types in this package describe the v2 surface, served under
// /v2/{dataset}/... . The v2 contract is:
//
//   - every list parameter is named top_k (v1 map-keywords used "top";
//     the v1 adapter in internal/serve accepts both spellings),
//   - errors are RFC-7807-style problem documents (see Error), written
//     with Content-Type application/problem+json and a machine-readable
//     Code, never bare strings,
//   - batch endpoints report per-item failures as structured Error values
//     inline with their successful siblings.
//
// The legacy /v1 routes keep their original shapes (string error
// envelope, "top"), produced by a compatibility adapter over the same
// handlers; successful v1 bodies are bit-identical to v2 ones.
//
// Success-response types (Configuration, Path, TranslateResult, ...) are
// shared between v1 and v2: their JSON tags are frozen — changing one is
// a breaking contract change and is guarded by TestWireContractRoundTrip.
package api
