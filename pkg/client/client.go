// Package client is the Go SDK for Templar's v2 HTTP API: typed methods
// over the templar/pkg/api wire contract with retries, backoff and
// structured-error decoding.
//
//	c, _ := client.New("http://localhost:8080")
//	resp, err := c.Translate(ctx, "mas", api.TranslateRequest{
//	    Queries: []api.KeywordsInput{{Spec: "papers:select;Databases:where"}},
//	})
//	var apiErr *api.Error
//	if errors.As(err, &apiErr) && apiErr.Code == api.CodeUnknownDataset { ... }
//
// Idempotent calls (everything except AppendLog) are retried with
// jittered exponential backoff on transport errors, 5xx responses and 429
// sheds; a Retry-After header on a 429/503 raises the next delay to the
// server's advice, capped at the backoff ceiling. Non-idempotent appends
// are never retried — not even on 429, where the server promises nothing
// was applied — because a transport error cannot prove that. Server
// errors always surface as *api.Error so callers branch on Code, not on
// message prose. The v1 routes are not wrapped — they exist for frozen
// legacy clients, and new integrations should speak v2.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"templar/pkg/api"
)

// Client talks to one Templar server. It is safe for concurrent use.
type Client struct {
	base    string
	httpc   *http.Client
	retries int
	backoff time.Duration
	maxWait time.Duration
	jitter  func(d time.Duration) time.Duration
	sleep   func(ctx context.Context, d time.Duration) error
	// rng drives the default backoff jitter. Per-client state: drawing
	// from the process-global math/rand source would couple every Client
	// (and any other library using it) to one contended lock, and a
	// program seeding the global source for reproducibility would
	// accidentally put all its HTTP retries in lockstep too.
	rng        jitterRand
	jitterSeed uint64
	// redirects counts redirects the transport followed — e.g. appends a
	// follower replica bounced to its primary with 307 not_primary.
	redirects atomic.Int64
}

// clientSeq distinguishes default jitter seeds of clients created in the
// same clock tick.
var clientSeq atomic.Uint64

// jitterRand is a goroutine-safe xorshift64* generator (the same
// recurrence as internal/xrand, behind an atomic CAS loop so concurrent
// retriers never block each other). Not cryptographic — it only spreads
// retry delays.
type jitterRand struct{ s atomic.Uint64 }

// seed initializes the state; zero (which would trap xorshift at zero
// forever) is remapped to a fixed odd constant.
func (r *jitterRand) seed(s uint64) {
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	r.s.Store(s)
}

// next returns the next 64 pseudo-random bits.
func (r *jitterRand) next() uint64 {
	for {
		old := r.s.Load()
		s := old
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		if r.s.CompareAndSwap(old, s) {
			return s * 0x2545F4914F6CDD1D
		}
	}
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient swaps the underlying *http.Client (timeouts, transport,
// instrumentation).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// WithRetries sets how many times an idempotent call is retried after
// its first attempt (default 2; 0 disables retrying).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the initial and maximum retry backoff (defaults
// 100ms / 2s). The delay doubles per attempt, capped at max, then
// jittered (see WithJitter).
func WithBackoff(initial, max time.Duration) Option {
	return func(c *Client) { c.backoff, c.maxWait = initial, max }
}

// WithJitter overrides how each computed backoff delay is spread before
// sleeping. The default draws uniformly from [d/2, d] ("equal jitter"):
// without it, a fleet of workers that hit the same 5xx at the same moment
// would all sleep the same deterministic exponential schedule and retry
// in lockstep — a thundering herd re-hammering the recovering server.
// Passing nil restores the default; tests that need exact delays can pass
// the identity function.
func WithJitter(f func(d time.Duration) time.Duration) Option {
	return func(c *Client) { c.jitter = f }
}

// WithJitterSeed pins the client's private jitter source to a
// deterministic seed, making the exact backoff schedule reproducible
// (load-test harnesses, failure-injection tests). Zero — the default —
// picks a per-client seed from the wall clock.
func WithJitterSeed(seed uint64) Option {
	return func(c *Client) { c.jitterSeed = seed }
}

// equalJitter is the default backoff spread: uniform in [d/2, d], keeping
// at least half the exponential delay so pressure still backs off while
// desynchronizing simultaneous retriers. It draws from the client's own
// seeded source, never from process-global state.
func (c *Client) equalJitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(c.rng.next()%uint64(d-half+1))
}

// New builds a Client for a server base URL like "http://host:8080".
func New(base string, opts ...Option) (*Client, error) {
	u, err := url.Parse(base)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: invalid base URL %q", base)
	}
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		httpc:   &http.Client{Timeout: 30 * time.Second},
		retries: 2,
		backoff: 100 * time.Millisecond,
		maxWait: 2 * time.Second,
		sleep:   sleepCtx,
	}
	for _, o := range opts {
		o(c)
	}
	seed := c.jitterSeed
	if seed == 0 {
		// Per-client wall-clock seed, perturbed by a process-wide counter
		// so two clients created in the same nanosecond (coarse clocks,
		// tight loops) still diverge.
		seed = uint64(time.Now().UnixNano()) ^ (clientSeq.Add(1) << 48)
	}
	c.rng.seed(seed)
	if c.jitter == nil {
		c.jitter = c.equalJitter
	}
	// Count the redirects the transport follows without disturbing the
	// caller's redirect policy. The http.Client is shallow-copied first so
	// a shared client (httptest's, an instrumented one) is never mutated.
	hc := *c.httpc
	prev := hc.CheckRedirect
	hc.CheckRedirect = func(req *http.Request, via []*http.Request) error {
		c.redirects.Add(1)
		if prev != nil {
			return prev(req, via)
		}
		if len(via) >= 10 {
			return fmt.Errorf("client: stopped after 10 redirects")
		}
		return nil
	}
	c.httpc = &hc
	return c, nil
}

// Redirects reports how many HTTP redirects the client's transport has
// followed since creation. A gateway or follower replica answers appends
// with 307 not_primary + Location, which the transport replays against
// the primary transparently (request bodies are replayable buffers);
// this counter is how load reports tell a redirected-then-successful
// call from a plain one instead of misclassifying it as a failure.
func (c *Client) Redirects() int64 { return c.redirects.Load() }

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Health fetches GET /healthz.
func (c *Client) Health(ctx context.Context) (*api.HealthResponse, error) {
	var out api.HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Datasets fetches GET /v2/datasets: the hosted datasets with engine
// stats, for discovery before scoped calls.
func (c *Client) Datasets(ctx context.Context) ([]api.DatasetStatus, error) {
	var out api.DatasetsResponse
	if err := c.do(ctx, http.MethodGet, "/v2/datasets", nil, &out, true); err != nil {
		return nil, err
	}
	return out.Datasets, nil
}

// MapKeywords runs MAPKEYWORDS on a named dataset.
func (c *Client) MapKeywords(ctx context.Context, dataset string, req api.MapKeywordsRequest) (*api.MapKeywordsResponse, error) {
	var out api.MapKeywordsResponse
	if err := c.do(ctx, http.MethodPost, c.scoped(dataset, "map-keywords"), req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// InferJoins runs INFERJOINS on a named dataset.
func (c *Client) InferJoins(ctx context.Context, dataset string, req api.InferJoinsRequest) (*api.InferJoinsResponse, error) {
	var out api.InferJoinsResponse
	if err := c.do(ctx, http.MethodPost, c.scoped(dataset, "infer-joins"), req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Translate runs a batched NLQ→SQL translation on a named dataset.
// Transport-level failures affect the whole batch; per-query failures
// come back as structured errors inside the response's results.
func (c *Client) Translate(ctx context.Context, dataset string, req api.TranslateRequest) (*api.TranslateResponse, error) {
	var out api.TranslateResponse
	if err := c.do(ctx, http.MethodPost, c.scoped(dataset, "translate"), req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// TranslateOne translates a single keyword query, unwrapping the batch:
// a per-query engine failure is returned as the *api.Error it carries.
func (c *Client) TranslateOne(ctx context.Context, dataset string, in api.KeywordsInput) (*api.TranslateResult, error) {
	resp, err := c.Translate(ctx, dataset, api.TranslateRequest{Queries: []api.KeywordsInput{in}})
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != 1 {
		return nil, fmt.Errorf("client: server returned %d results for a 1-query batch", len(resp.Results))
	}
	r := resp.Results[0]
	if r.Error != nil {
		return nil, r.Error
	}
	return &r, nil
}

// AppendLog appends user queries to a dataset's live log. Appends are
// not idempotent, so they are never retried: a transport error after the
// server may have applied the batch surfaces as-is for the caller to
// reconcile (e.g. by checking /healthz log counters).
func (c *Client) AppendLog(ctx context.Context, dataset string, req api.LogAppendRequest) (*api.LogAppendResponse, error) {
	var out api.LogAppendResponse
	if err := c.do(ctx, http.MethodPost, c.scoped(dataset, "log"), req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Feedback submits a verdict on a recently served translation: the
// request ID must be one the client tagged a Translate call with (see
// WithRequestID) or read off a translate response's X-Request-ID header.
// Like log appends, feedback is not idempotent — an accepted or
// corrected verdict mutates the log — so it is never retried; a retry
// after an ambiguous failure is safe anyway, because the server answers
// a duplicate with 409 feedback_conflict rather than double-counting.
func (c *Client) Feedback(ctx context.Context, dataset string, req api.FeedbackRequest) (*api.FeedbackResponse, error) {
	var out api.FeedbackResponse
	if err := c.do(ctx, http.MethodPost, c.scoped(dataset, "feedback"), req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

func (c *Client) scoped(dataset, endpoint string) string {
	return "/v2/" + url.PathEscape(dataset) + "/" + endpoint
}

// requestIDKey carries a caller-chosen X-Request-ID through a context.
type requestIDKey struct{}

// WithRequestID returns a context that makes calls carry the given
// X-Request-ID (64 characters max, per the server's middleware; longer
// IDs are replaced server-side). Tagging a Translate call with a known
// ID is how a client later references the served translation in
// Feedback without parsing response headers.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// do executes one call with marshal-once/replay-per-attempt bodies,
// retrying idempotent requests on transport errors and 5xx responses.
func (c *Client) do(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	attempts := 1
	if idempotent {
		attempts += c.retries
	}
	wait := c.backoff
	var lastErr error
	var retryAfter time.Duration
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			d := c.jitter(wait)
			// An overloaded or draining server's Retry-After is a floor,
			// not a suggestion: sleeping less re-hammers it inside the
			// window it asked for. It was capped at maxWait when parsed,
			// so a confused server cannot park the client forever.
			if retryAfter > d {
				d = retryAfter
			}
			if err := c.sleep(ctx, d); err != nil {
				return err
			}
			if wait *= 2; wait > c.maxWait {
				wait = c.maxWait
			}
		}
		var retry bool
		retry, retryAfter, lastErr = c.attempt(ctx, method, path, body, out)
		if lastErr == nil {
			return nil
		}
		if !retry || ctx.Err() != nil {
			return lastErr
		}
	}
	return lastErr
}

// retryAfterHint parses a 429/503 response's Retry-After advice (integer
// seconds only; the HTTP-date form is ignored), capped at the client's
// backoff ceiling.
func (c *Client) retryAfterHint(resp *http.Response) time.Duration {
	if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
		return 0
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs <= 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > c.maxWait {
		d = c.maxWait
	}
	return d
}

// attempt runs one HTTP round trip; retry reports whether the failure
// class is worth another attempt, and retryAfter carries the server's
// (capped) Retry-After advice for the next backoff.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any) (retry bool, retryAfter time.Duration, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return false, 0, fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if id, ok := ctx.Value(requestIDKey{}).(string); ok && id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return true, 0, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return true, 0, fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode >= 300 && resp.StatusCode < 400 {
		// A redirect the transport did not follow (missing Location, policy
		// refusal, too many hops) must surface as the structured error its
		// body carries — decoding a problem document as the success payload
		// would fabricate an all-zero response.
		return false, 0, decodeError(resp, raw)
	}
	if resp.StatusCode >= 400 {
		// A 429 is the server shedding load, not the request being wrong:
		// retrying (after its Retry-After) is the designed client behavior
		// for idempotent calls. Other 4xx replays would fail identically.
		retry := resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests
		return retry, c.retryAfterHint(resp), decodeError(resp, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return false, 0, fmt.Errorf("client: undecodable %d response: %w", resp.StatusCode, err)
		}
	}
	return false, 0, nil
}

// decodeError turns an error response into an *api.Error, synthesizing
// one for bodies that are not problem documents (legacy envelopes,
// proxies, panics) so callers always branch on a structured error.
func decodeError(resp *http.Response, raw []byte) error {
	var e api.Error
	if err := json.Unmarshal(raw, &e); err == nil && e.Code != "" {
		if e.Status == 0 {
			e.Status = resp.StatusCode
		}
		return &e
	}
	code := api.CodeBadRequest
	if resp.StatusCode >= 500 {
		code = api.CodeInternal
	}
	// Legacy {"error": "..."} envelope (v1 routes, older servers).
	var legacy struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &legacy); err == nil && legacy.Error != "" {
		return api.NewError(resp.StatusCode, code, legacy.Error)
	}
	detail := strings.TrimSpace(string(raw))
	if len(detail) > 200 {
		detail = detail[:200]
	}
	return api.Errorf(resp.StatusCode, code, "HTTP %d: %s", resp.StatusCode, detail)
}
