package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/qfg"
	"templar/internal/serve"
	"templar/internal/sqlparse"
	"templar/internal/templar"
	"templar/pkg/api"
)

// liveServer boots a real serving stack (MAS engine, live log, worker
// pool, middleware) and a Client against it: the SDK round-trip rig.
func liveServer(t testing.TB) *Client {
	t.Helper()
	ds := datasets.MAS()
	entries := make([]sqlparse.LogEntry, 0, len(ds.Tasks))
	for _, task := range ds.Tasks {
		q, err := sqlparse.Parse(task.Gold)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
	}
	graph, err := qfg.Build(entries, fragment.NoConstOp)
	if err != nil {
		t.Fatal(err)
	}
	sys := templar.NewLive(ds.DB, embedding.New(), qfg.NewLive(graph), templar.Options{LogJoin: true})
	ts := httptest.NewServer(serve.NewServer(sys, ds.Name, 4).Handler())
	t.Cleanup(ts.Close)
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRoundTripEveryEndpoint drives each v2 endpoint through the SDK —
// the contract proof that pkg/api shapes round-trip client↔server.
func TestRoundTripEveryEndpoint(t *testing.T) {
	c := liveServer(t)
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Dataset != "MAS" || !h.LiveLog || h.Metrics == nil {
		t.Fatalf("health = %+v", h)
	}

	dss, err := c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(dss) != 1 || dss[0].Name != "MAS" || !dss[0].Default {
		t.Fatalf("datasets = %+v", dss)
	}

	mk, err := c.MapKeywords(ctx, "mas", api.MapKeywordsRequest{
		KeywordsInput: api.KeywordsInput{Spec: "papers:select;Databases:where"},
		TopK:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(mk.Configurations); n == 0 || n > 2 {
		t.Fatalf("configurations = %d", n)
	}
	if mk.Configurations[0].Mappings[0].Fragment == "" {
		t.Fatalf("mapping lost its fragment: %+v", mk.Configurations[0].Mappings[0])
	}

	ij, err := c.InferJoins(ctx, "mas", api.InferJoinsRequest{
		Relations: []string{"publication", "domain"}, TopK: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ij.Paths) == 0 || len(ij.Paths[0].Edges) == 0 || ij.Paths[0].Goodness <= 0 {
		t.Fatalf("paths = %+v", ij.Paths)
	}

	tr, err := c.Translate(ctx, "mas", api.TranslateRequest{Queries: []api.KeywordsInput{
		{Spec: "papers:select;Databases:where"},
		{Spec: "authors:select;Data Mining:where"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Results) != 2 {
		t.Fatalf("results = %d", len(tr.Results))
	}
	for i, r := range tr.Results {
		if r.Error != nil || r.SQL == "" || r.Config == nil || r.Path == nil {
			t.Fatalf("result %d = %+v", i, r)
		}
	}

	one, err := c.TranslateOne(ctx, "mas", api.KeywordsInput{Spec: "papers:select;Databases:where"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(one.SQL, "publication") {
		t.Fatalf("sql = %q", one.SQL)
	}

	before := h.LogQueries
	ar, err := c.AppendLog(ctx, "mas", api.LogAppendRequest{Queries: []api.LogEntry{
		{SQL: "SELECT p.title FROM publication p WHERE p.citation_num > 50", Count: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if ar.Appended != 1 || ar.LogQueries != before+2 {
		t.Fatalf("append = %+v (before %d)", ar, before)
	}
}

// TestRoundTripErrorCodes proves the SDK surfaces every structured error
// class the v2 endpoints emit, branchable by code.
func TestRoundTripErrorCodes(t *testing.T) {
	c := liveServer(t)
	ctx := context.Background()

	wantCode := func(t *testing.T, err error, status int, code string) *api.Error {
		t.Helper()
		var apiErr *api.Error
		if !errors.As(err, &apiErr) {
			t.Fatalf("err = %v (%T), want *api.Error", err, err)
		}
		if apiErr.Status != status || apiErr.Code != code {
			t.Fatalf("got %d/%s (%q), want %d/%s", apiErr.Status, apiErr.Code, apiErr.Detail, status, code)
		}
		return apiErr
	}

	t.Run("unknown dataset", func(t *testing.T) {
		_, err := c.MapKeywords(ctx, "nonesuch", api.MapKeywordsRequest{
			KeywordsInput: api.KeywordsInput{Spec: "papers:select"},
		})
		e := wantCode(t, err, 404, api.CodeUnknownDataset)
		if e.Dataset != "nonesuch" {
			t.Fatalf("dataset field = %q", e.Dataset)
		}
	})
	t.Run("validation", func(t *testing.T) {
		_, err := c.MapKeywords(ctx, "mas", api.MapKeywordsRequest{})
		wantCode(t, err, 422, api.CodeValidation)
	})
	t.Run("unprocessable", func(t *testing.T) {
		_, err := c.InferJoins(ctx, "mas", api.InferJoinsRequest{Relations: []string{"nonesuch"}})
		wantCode(t, err, 422, api.CodeUnprocessable)
	})
	t.Run("per-item translate error", func(t *testing.T) {
		_, err := c.TranslateOne(ctx, "mas", api.KeywordsInput{Spec: "oops"})
		wantCode(t, err, 422, api.CodeValidation)
	})
	t.Run("batch too large", func(t *testing.T) {
		queries := make([]api.KeywordsInput, serve.DefaultMaxTranslateBatch+1)
		for i := range queries {
			queries[i] = api.KeywordsInput{Spec: "papers:select"}
		}
		_, err := c.Translate(ctx, "mas", api.TranslateRequest{Queries: queries})
		wantCode(t, err, 422, api.CodeBatchTooLarge)
	})
	t.Run("body too large", func(t *testing.T) {
		_, err := c.MapKeywords(ctx, "mas", api.MapKeywordsRequest{
			KeywordsInput: api.KeywordsInput{Spec: strings.Repeat("x", serve.DefaultMaxBodyBytes+1)},
		})
		wantCode(t, err, 413, api.CodeBodyTooLarge)
	})
	t.Run("log frozen", func(t *testing.T) {
		// A frozen engine (no live log) rejects appends with 409.
		ds := datasets.MAS()
		entries := make([]sqlparse.LogEntry, 0, len(ds.Tasks))
		for _, task := range ds.Tasks {
			q, err := sqlparse.Parse(task.Gold)
			if err != nil {
				t.Fatal(err)
			}
			entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
		}
		graph, err := qfg.Build(entries, fragment.NoConstOp)
		if err != nil {
			t.Fatal(err)
		}
		sys := templar.New(ds.DB, embedding.New(), graph, templar.Options{LogJoin: true})
		ts := httptest.NewServer(serve.NewServer(sys, ds.Name, 2).Handler())
		t.Cleanup(ts.Close)
		fc, err := New(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		_, err = fc.AppendLog(ctx, "mas", api.LogAppendRequest{Queries: []api.LogEntry{
			{SQL: "SELECT a.name FROM author a"},
		}})
		wantCode(t, err, 409, api.CodeLogFrozen)
	})
	t.Run("log append validation items", func(t *testing.T) {
		_, err := c.AppendLog(ctx, "mas", api.LogAppendRequest{Queries: []api.LogEntry{
			{SQL: "SELECT a.name FROM author a"},
			{SQL: "SELEC nonsense"},
		}})
		e := wantCode(t, err, 422, api.CodeValidation)
		if len(e.Items) != 1 || e.Items[0].Index != 1 {
			t.Fatalf("items = %+v", e.Items)
		}
	})
}

// TestRoundTripCancellation: a canceled caller context aborts the call.
func TestRoundTripCancellation(t *testing.T) {
	c := liveServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Translate(ctx, "mas", api.TranslateRequest{Queries: []api.KeywordsInput{
		{Spec: "papers:select;Databases:where"},
	}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
