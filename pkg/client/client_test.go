package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"templar/pkg/api"
)

// flaky is a handler that fails the first n attempts with status, then
// succeeds with body.
type flaky struct {
	fails  int32
	status int
	body   any
	hits   atomic.Int32
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.hits.Add(1) <= f.fails {
		w.Header().Set("Content-Type", api.ProblemContentType)
		w.WriteHeader(f.status)
		json.NewEncoder(w).Encode(api.NewError(f.status, api.CodeInternal, "transient"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(f.body)
}

// newTestClient builds a client against h with recorded (not slept)
// backoff delays.
func newTestClient(t *testing.T, h http.Handler, opts ...Option) (*Client, *[]time.Duration) {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var delays []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		delays = append(delays, d)
		return ctx.Err()
	}
	return c, &delays
}

func TestRetriesOn5xxWithBackoff(t *testing.T) {
	h := &flaky{fails: 2, status: http.StatusServiceUnavailable, body: api.HealthResponse{Status: "ok"}}
	c, delays := newTestClient(t, h, WithRetries(3), WithBackoff(100*time.Millisecond, 2*time.Second))

	resp, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" {
		t.Fatalf("resp = %+v", resp)
	}
	if got := h.hits.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	// The exponential schedule is 100ms then 200ms; the default equal
	// jitter spreads each delay into [d/2, d].
	if want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}; len(*delays) != 2 ||
		(*delays)[0] < want[0]/2 || (*delays)[0] > want[0] ||
		(*delays)[1] < want[1]/2 || (*delays)[1] > want[1] {
		t.Fatalf("backoff delays = %v, want within [d/2, d] of %v", *delays, want)
	}
}

// TestExactBackoffWithIdentityJitter pins the underlying exponential
// schedule by disabling the spread.
func TestExactBackoffWithIdentityJitter(t *testing.T) {
	h := &flaky{fails: 4, status: http.StatusServiceUnavailable, body: api.HealthResponse{Status: "ok"}}
	c, delays := newTestClient(t, h,
		WithRetries(4),
		WithBackoff(100*time.Millisecond, 300*time.Millisecond),
		WithJitter(func(d time.Duration) time.Duration { return d }))

	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond, 300 * time.Millisecond}
	if len(*delays) != len(want) {
		t.Fatalf("delays = %v, want %v", *delays, want)
	}
	for i, d := range *delays {
		if d != want[i] {
			t.Fatalf("delays = %v, want %v", *delays, want)
		}
	}
}

// TestBackoffJitterSpreads proves retry delays actually vary: a fleet of
// clients computing the same exponential schedule must not sleep
// identically, or simultaneous failures re-synchronize into a thundering
// herd when they all retry at once.
func TestBackoffJitterSpreads(t *testing.T) {
	h := &flaky{fails: 1 << 30, status: http.StatusServiceUnavailable}
	c, delays := newTestClient(t, h, WithRetries(40), WithBackoff(time.Second, time.Second))

	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("expected exhausted retries")
	}
	if len(*delays) != 40 {
		t.Fatalf("recorded %d delays", len(*delays))
	}
	distinct := map[time.Duration]bool{}
	for _, d := range *delays {
		if d < 500*time.Millisecond || d > time.Second {
			t.Fatalf("delay %v escaped the jitter window [500ms, 1s]", d)
		}
		distinct[d] = true
	}
	// 40 draws from a ~500ms window at nanosecond granularity: any
	// collision at all would be extraordinary; identical delays mean the
	// jitter is not being applied.
	if len(distinct) < 10 {
		t.Fatalf("only %d distinct delays across %d retries; backoff is not jittered", len(distinct), len(*delays))
	}
}

func TestRetriesExhaustedSurfaceStructuredError(t *testing.T) {
	h := &flaky{fails: 99, status: http.StatusInternalServerError}
	c, _ := newTestClient(t, h, WithRetries(2))

	_, err := c.Health(context.Background())
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError || apiErr.Code != api.CodeInternal {
		t.Fatalf("err = %v", err)
	}
	if got := h.hits.Load(); got != 3 { // 1 + 2 retries
		t.Fatalf("attempts = %d, want 3", got)
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	h := &flaky{fails: 99, status: http.StatusNotFound}
	c, delays := newTestClient(t, h, WithRetries(5))

	_, err := c.MapKeywords(context.Background(), "nope", api.MapKeywordsRequest{})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("err = %v", err)
	}
	if h.hits.Load() != 1 || len(*delays) != 0 {
		t.Fatalf("4xx retried: %d attempts, %v delays", h.hits.Load(), *delays)
	}
}

// shedding fails the first n attempts with status + a Retry-After header,
// then succeeds with body.
type shedding struct {
	fails      int32
	status     int
	retryAfter string
	body       any
	hits       atomic.Int32
}

func (f *shedding) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.hits.Add(1) <= f.fails {
		if f.retryAfter != "" {
			w.Header().Set("Retry-After", f.retryAfter)
		}
		w.Header().Set("Content-Type", api.ProblemContentType)
		w.WriteHeader(f.status)
		json.NewEncoder(w).Encode(api.NewError(f.status, api.CodeOverloaded, "shed"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(f.body)
}

// TestRetryAfterExactSchedule pins the Retry-After contract with identity
// jitter: the server's advice is a floor on the next delay (the 100ms/
// 200ms exponential schedule would otherwise apply), and it is capped at
// the backoff ceiling, so a confused server cannot park the client.
func TestRetryAfterExactSchedule(t *testing.T) {
	t.Run("advice raises the delay", func(t *testing.T) {
		h := &shedding{fails: 2, status: http.StatusTooManyRequests, retryAfter: "1",
			body: api.HealthResponse{Status: "ok"}}
		c, delays := newTestClient(t, h,
			WithRetries(2),
			WithBackoff(100*time.Millisecond, 2*time.Second),
			WithJitter(func(d time.Duration) time.Duration { return d }))
		if _, err := c.Health(context.Background()); err != nil {
			t.Fatal(err)
		}
		want := []time.Duration{time.Second, time.Second}
		if len(*delays) != 2 || (*delays)[0] != want[0] || (*delays)[1] != want[1] {
			t.Fatalf("delays = %v, want %v", *delays, want)
		}
	})

	t.Run("advice capped at the ceiling", func(t *testing.T) {
		h := &shedding{fails: 1, status: http.StatusServiceUnavailable, retryAfter: "3600",
			body: api.HealthResponse{Status: "ok"}}
		c, delays := newTestClient(t, h,
			WithRetries(1),
			WithBackoff(100*time.Millisecond, 2*time.Second),
			WithJitter(func(d time.Duration) time.Duration { return d }))
		if _, err := c.Health(context.Background()); err != nil {
			t.Fatal(err)
		}
		if len(*delays) != 1 || (*delays)[0] != 2*time.Second {
			t.Fatalf("delays = %v, want [2s] (capped)", *delays)
		}
	})

	t.Run("exponential floor wins when advice is lower", func(t *testing.T) {
		h := &shedding{fails: 1, status: http.StatusTooManyRequests, retryAfter: "1",
			body: api.HealthResponse{Status: "ok"}}
		c, delays := newTestClient(t, h,
			WithRetries(1),
			WithBackoff(3*time.Second, 10*time.Second),
			WithJitter(func(d time.Duration) time.Duration { return d }))
		if _, err := c.Health(context.Background()); err != nil {
			t.Fatal(err)
		}
		if len(*delays) != 1 || (*delays)[0] != 3*time.Second {
			t.Fatalf("delays = %v, want [3s] (backoff already past the advice)", *delays)
		}
	})
}

// TestShedRetryability pins the 429 split: idempotent calls retry a shed
// and succeed once admitted; a non-idempotent append surfaces the 429
// immediately (the server promises nothing was applied, but the client
// cannot distinguish that from a torn transport on a replay).
func TestShedRetryability(t *testing.T) {
	h := &shedding{fails: 2, status: http.StatusTooManyRequests, retryAfter: "1",
		body: api.MapKeywordsResponse{}}
	c, _ := newTestClient(t, h, WithRetries(3))
	if _, err := c.MapKeywords(context.Background(), "mas", api.MapKeywordsRequest{}); err != nil {
		t.Fatalf("idempotent call did not ride out the shed: %v", err)
	}
	if got := h.hits.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}

	h2 := &shedding{fails: 99, status: http.StatusTooManyRequests, retryAfter: "1"}
	c2, delays := newTestClient(t, h2, WithRetries(3))
	_, err := c2.AppendLog(context.Background(), "mas", api.LogAppendRequest{Queries: []api.LogEntry{{SQL: "SELECT 1"}}})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeOverloaded {
		t.Fatalf("err = %v, want overloaded problem", err)
	}
	if h2.hits.Load() != 1 || len(*delays) != 0 {
		t.Fatalf("shed append retried: %d attempts, %v delays", h2.hits.Load(), *delays)
	}
}

func TestAppendLogNeverRetries(t *testing.T) {
	h := &flaky{fails: 99, status: http.StatusServiceUnavailable}
	c, _ := newTestClient(t, h, WithRetries(5))

	_, err := c.AppendLog(context.Background(), "mas", api.LogAppendRequest{Queries: []api.LogEntry{{SQL: "SELECT 1"}}})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := h.hits.Load(); got != 1 {
		t.Fatalf("non-idempotent append attempted %d times", got)
	}
}

func TestStructuredErrorDecoding(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/problem/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", api.ProblemContentType)
		w.WriteHeader(http.StatusUnprocessableEntity)
		e := api.NewError(http.StatusUnprocessableEntity, api.CodeBatchTooLarge, "too many")
		e.WithItem(3, api.CodeValidation, "bad entry")
		json.NewEncoder(w).Encode(e)
	})
	mux.HandleFunc("/legacy/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"serve: no keywords"}`))
	})
	mux.HandleFunc("/garbage/", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
		w.Write([]byte("<html>proxy sad</html>"))
	})
	c, _ := newTestClient(t, mux, WithRetries(0))

	var apiErr *api.Error
	if err := c.do(context.Background(), http.MethodGet, "/problem/x", nil, nil, true); !errors.As(err, &apiErr) ||
		apiErr.Code != api.CodeBatchTooLarge || len(apiErr.Items) != 1 || apiErr.Items[0].Index != 3 {
		t.Fatalf("problem decode: %v", err)
	}
	if err := c.do(context.Background(), http.MethodGet, "/legacy/x", nil, nil, true); !errors.As(err, &apiErr) ||
		apiErr.Detail != "serve: no keywords" || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("legacy decode: %v", err)
	}
	if err := c.do(context.Background(), http.MethodGet, "/garbage/x", nil, nil, true); !errors.As(err, &apiErr) ||
		apiErr.Status != http.StatusBadGateway || apiErr.Code != api.CodeInternal {
		t.Fatalf("garbage decode: %v", err)
	}
}

func TestContextCancelStopsRetrying(t *testing.T) {
	h := &flaky{fails: 99, status: http.StatusServiceUnavailable}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, WithRetries(10))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.sleep = func(ctx context.Context, d time.Duration) error {
		cancel() // the client is mid-backoff when the caller gives up
		return ctx.Err()
	}
	if _, err := c.Health(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := h.hits.Load(); got != 1 {
		t.Fatalf("attempts after cancel = %d, want 1", got)
	}
}

// TestAppendFollowsRedirectToPrimary pins the follower-replica contract:
// an append answered with 307 not_primary + Location is replayed against
// the primary transparently (the request body is a replayable buffer),
// the call is a success, and Redirects() counts the hop so load reports
// can classify it instead of calling it a failure.
func TestAppendFollowsRedirectToPrimary(t *testing.T) {
	var primaryHits atomic.Int32
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		primaryHits.Add(1)
		if r.Method != http.MethodPost {
			t.Errorf("primary saw method %s", r.Method)
		}
		var req api.LogAppendRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Queries) != 1 {
			t.Errorf("redirected body not replayed: err=%v req=%+v", err, req)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(api.LogAppendResponse{Appended: 1})
	}))
	t.Cleanup(primary.Close)

	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		e := api.NewError(http.StatusTemporaryRedirect, api.CodeNotPrimary, "read-only follower")
		w.Header().Set("Location", primary.URL+r.URL.RequestURI())
		w.Header().Set("Content-Type", api.ProblemContentType)
		w.WriteHeader(http.StatusTemporaryRedirect)
		json.NewEncoder(w).Encode(e)
	}))
	t.Cleanup(follower.Close)

	c, err := New(follower.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.AppendLog(context.Background(), "mas",
		api.LogAppendRequest{Queries: []api.LogEntry{{SQL: "SELECT 1"}}})
	if err != nil {
		t.Fatalf("redirected append failed: %v", err)
	}
	if resp.Appended != 1 || primaryHits.Load() != 1 {
		t.Fatalf("resp=%+v primaryHits=%d", resp, primaryHits.Load())
	}
	if got := c.Redirects(); got != 1 {
		t.Fatalf("Redirects() = %d, want 1", got)
	}
}

// TestUnfollowedRedirectIsAnError pins the classification fix: a 307
// whose Location the transport cannot follow (absent here) must surface
// as the structured not_primary error its body carries — previously the
// problem document was silently decoded into the success struct.
func TestUnfollowedRedirectIsAnError(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", api.ProblemContentType)
		w.WriteHeader(http.StatusTemporaryRedirect)
		json.NewEncoder(w).Encode(api.NewError(http.StatusTemporaryRedirect, api.CodeNotPrimary, "read-only follower"))
	})
	c, delays := newTestClient(t, h, WithRetries(3))

	_, err := c.AppendLog(context.Background(), "mas",
		api.LogAppendRequest{Queries: []api.LogEntry{{SQL: "SELECT 1"}}})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotPrimary || apiErr.Status != http.StatusTemporaryRedirect {
		t.Fatalf("err = %v, want structured not_primary", err)
	}
	if len(*delays) != 0 {
		t.Fatalf("redirect response retried: %v", *delays)
	}
	if got := c.Redirects(); got != 0 {
		t.Fatalf("Redirects() = %d for an unfollowed redirect, want 0", got)
	}
}

// TestSharedHTTPClientNotMutated proves the redirect counter is installed
// on a private shallow copy: two Clients sharing one http.Client count
// independently and the caller's CheckRedirect policy still runs.
func TestSharedHTTPClientNotMutated(t *testing.T) {
	shared := &http.Client{}
	var policyHits atomic.Int32
	shared.CheckRedirect = func(req *http.Request, via []*http.Request) error {
		policyHits.Add(1)
		return nil
	}
	target := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(api.HealthResponse{Status: "ok"})
	}))
	t.Cleanup(target.Close)
	hop := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, target.URL+r.URL.RequestURI(), http.StatusTemporaryRedirect)
	}))
	t.Cleanup(hop.Close)

	a, err := New(hop.URL, WithHTTPClient(shared))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(hop.URL, WithHTTPClient(shared))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if shared.CheckRedirect == nil || a.Redirects() != 1 || b.Redirects() != 0 {
		t.Fatalf("shared client mutated or counts bled: a=%d b=%d", a.Redirects(), b.Redirects())
	}
	if policyHits.Load() != 1 {
		t.Fatalf("caller's CheckRedirect ran %d times, want 1", policyHits.Load())
	}
}

func TestNewValidatesBaseURL(t *testing.T) {
	for _, bad := range []string{"", "not a url", "localhost:8080", "://x"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
	if _, err := New("http://localhost:8080/"); err != nil {
		t.Fatal(err)
	}
}

// xorshiftStarRef is the reference xorshift64* recurrence (the same one
// internal/xrand pins), reimplemented here so the test derives expected
// jitter independently of the client's jitterRand.
func xorshiftStarRef(s *uint64) uint64 {
	x := *s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*s = x
	return x * 0x2545F4914F6CDD1D
}

// TestSeededJitterExactSchedule pins the full jittered backoff schedule
// for a known seed: with WithJitterSeed the delays are exactly
// half + ref()%span for each exponential step, reproducible run to run.
func TestSeededJitterExactSchedule(t *testing.T) {
	const seed = 0xDEADBEEFCAFE
	h := &flaky{fails: 4, status: http.StatusServiceUnavailable, body: api.HealthResponse{Status: "ok"}}
	c, delays := newTestClient(t, h,
		WithRetries(4),
		WithBackoff(100*time.Millisecond, 300*time.Millisecond),
		WithJitterSeed(seed))

	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}

	s := uint64(seed)
	schedule := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond, 300 * time.Millisecond}
	want := make([]time.Duration, len(schedule))
	for i, d := range schedule {
		half := d / 2
		want[i] = half + time.Duration(xorshiftStarRef(&s)%uint64(d-half+1))
	}
	if len(*delays) != len(want) {
		t.Fatalf("delays = %v, want %v", *delays, want)
	}
	for i, d := range *delays {
		if d != want[i] {
			t.Fatalf("delay[%d] = %v, want %v (full: %v vs %v)", i, d, want[i], *delays, want)
		}
	}
	for _, d := range *delays {
		if d < 50*time.Millisecond || d > 300*time.Millisecond {
			t.Fatalf("delay %v escaped [d/2, d]", d)
		}
	}
}

// TestSeededJitterReproducible proves two clients with the same seed
// sleep identically, and two clients with different seeds do not.
func TestSeededJitterReproducible(t *testing.T) {
	run := func(seed uint64) []time.Duration {
		h := &flaky{fails: 1 << 30, status: http.StatusServiceUnavailable}
		c, delays := newTestClient(t, h, WithRetries(8), WithBackoff(time.Second, time.Second), WithJitterSeed(seed))
		if _, err := c.Health(context.Background()); err == nil {
			t.Fatal("expected exhausted retries")
		}
		return *delays
	}
	a, b, other := run(42), run(42), run(43)
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("recorded %d/%d delays", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 produced identical schedules: %v", a)
	}
}

// TestJitterRandZeroSeed pins the zero-seed remap: seeding with 0 must
// not trap the generator (xorshift of 0 is 0 forever) and must match the
// documented fallback constant.
func TestJitterRandZeroSeed(t *testing.T) {
	var r jitterRand
	r.seed(0)
	s := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < 16; i++ {
		if got, want := r.next(), xorshiftStarRef(&s); got != want {
			t.Fatalf("draw %d = %#x, want %#x", i, got, want)
		}
	}
}

// TestDefaultSeedsDiverge: clients built without WithJitterSeed must not
// share a schedule even when constructed back to back.
func TestDefaultSeedsDiverge(t *testing.T) {
	ca, err := New("http://localhost:1")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := New("http://localhost:1")
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 8; i++ {
		if ca.rng.next() != cb.rng.next() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two default-seeded clients drew identical jitter streams")
	}
}

// TestJitterRandConcurrent hammers one generator from many goroutines:
// the CAS loop must never deadlock, and every draw must be nonzero (the
// only way to draw 0 from xorshift64* is the trapped zero state).
func TestJitterRandConcurrent(t *testing.T) {
	var r jitterRand
	r.seed(7)
	var wg sync.WaitGroup
	var zeros atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if r.next() == 0 {
					zeros.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if zeros.Load() != 0 {
		t.Fatalf("drew zero %d times; generator state collapsed", zeros.Load())
	}
}
