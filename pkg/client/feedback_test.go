package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"templar/pkg/api"
)

// TestFeedbackRoundTrip drives the full verdict lifecycle through the
// SDK against a real serving stack: tag a translate with a known
// request ID, accept it, and watch the log grow by the weight.
func TestFeedbackRoundTrip(t *testing.T) {
	c := liveServer(t)
	ctx := context.Background()

	before, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}

	tr, err := c.Translate(WithRequestID(ctx, "sdk-fb-1"), "mas", api.TranslateRequest{
		Queries: []api.KeywordsInput{{Spec: "papers:select;Databases:where"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Results) != 1 || tr.Results[0].SQL == "" {
		t.Fatalf("translate results = %+v", tr.Results)
	}

	fb, err := c.Feedback(ctx, "mas", api.FeedbackRequest{
		RequestID: "sdk-fb-1", Verdict: api.VerdictAccepted, Weight: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fb.Verdict != api.VerdictAccepted || fb.Applied != 1 {
		t.Fatalf("feedback = %+v", fb)
	}
	if want := before.LogQueries + 2; fb.LogQueries != want {
		t.Fatalf("log_queries = %d, want %d", fb.LogQueries, want)
	}

	// The dataset status now carries the ledger counters.
	dss, err := c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if dss[0].Feedback == nil || dss[0].Feedback.Accepted != 1 {
		t.Fatalf("dataset feedback status = %+v", dss[0].Feedback)
	}
}

// TestFeedbackErrorCodesDecoded asserts each feedback failure surfaces
// as the structured *api.Error the server spoke.
func TestFeedbackErrorCodesDecoded(t *testing.T) {
	c := liveServer(t)
	ctx := context.Background()

	if _, err := c.Translate(WithRequestID(ctx, "sdk-fb-err"), "mas", api.TranslateRequest{
		Queries: []api.KeywordsInput{{Spec: "papers:select;Databases:where"}},
	}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		req        api.FeedbackRequest
		wantStatus int
		wantCode   string
	}{
		{"unknown_request_id", api.FeedbackRequest{RequestID: "never-served", Verdict: api.VerdictAccepted},
			http.StatusNotFound, api.CodeUnknownRequestID},
		{"invalid_sql", api.FeedbackRequest{RequestID: "sdk-fb-err", Verdict: api.VerdictCorrected, CorrectedSQL: "DELETE FROM x"},
			http.StatusUnprocessableEntity, api.CodeInvalidSQL},
		{"validation_failed", api.FeedbackRequest{RequestID: "sdk-fb-err", Verdict: "shrug"},
			http.StatusUnprocessableEntity, api.CodeValidation},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Feedback(ctx, "mas", tc.req)
			var apiErr *api.Error
			if !errors.As(err, &apiErr) {
				t.Fatalf("err = %v, want *api.Error", err)
			}
			if apiErr.Code != tc.wantCode || apiErr.Status != tc.wantStatus {
				t.Fatalf("got %s/%d, want %s/%d", apiErr.Code, apiErr.Status, tc.wantCode, tc.wantStatus)
			}
		})
	}

	// Double-submit: the first verdict wins, the second is a conflict.
	if _, err := c.Feedback(ctx, "mas", api.FeedbackRequest{
		RequestID: "sdk-fb-err", Verdict: api.VerdictRejected,
	}); err != nil {
		t.Fatal(err)
	}
	_, err := c.Feedback(ctx, "mas", api.FeedbackRequest{
		RequestID: "sdk-fb-err", Verdict: api.VerdictAccepted,
	})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeFeedbackConflict || apiErr.Status != http.StatusConflict {
		t.Fatalf("double-submit err = %v, want feedback_conflict/409", err)
	}
}

// TestFeedbackNeverRetries pins the non-idempotence contract: a 5xx on
// feedback is surfaced after exactly one attempt, like AppendLog.
func TestFeedbackNeverRetries(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, WithRetries(5), WithBackoff(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Feedback(context.Background(), "mas", api.FeedbackRequest{
		RequestID: "x", Verdict: api.VerdictAccepted,
	}); err == nil {
		t.Fatal("expected error")
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("server saw %d attempts, want 1", n)
	}
}

// TestWithRequestIDHeader asserts the context value reaches the wire on
// every call type.
func TestWithRequestIDHeader(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("X-Request-ID"))
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte("{}"))
	}))
	t.Cleanup(ts.Close)
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithRequestID(context.Background(), "tagged-42")
	if _, err := c.Translate(ctx, "mas", api.TranslateRequest{}); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "tagged-42" {
		t.Fatalf("X-Request-ID = %q, want tagged-42", got.Load())
	}
	// An untagged context sends no header.
	if _, err := c.Translate(context.Background(), "mas", api.TranslateRequest{}); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "" {
		t.Fatalf("X-Request-ID = %q, want empty", got.Load())
	}
}
