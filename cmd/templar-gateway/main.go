// Command templar-gateway fronts a Templar primary and its follower
// replicas (templar-serve -follow) with consistent-hash tenant routing:
// one listener, a static fleet behind it.
//
// The first -backends entry is the primary. Log appends and the /admin
// plane always go to the primary — it is the only process with a WAL;
// a follower that receives a write anyway answers 307 back to the
// primary, so even a stale gateway cannot lose one. Reads hash the
// target dataset onto a fixed ring of virtual nodes, so each tenant's
// reads stick to one backend and tenants spread across the fleet. A
// health loop polls every backend's /healthz: unreachable or draining
// backends are ejected (only their tenants move, to the next live ring
// owner) and readmitted when they recover, and followers whose
// replication lag exceeds -max-lag are skipped for the lagging dataset,
// pushing those reads toward the primary instead of serving arbitrarily
// stale answers.
//
// Usage:
//
//	templar-gateway -addr :8090 \
//	    -backends http://primary:8080,http://replica1:8081,http://replica2:8082 \
//	    [-max-lag 0] [-health-every 2s]
//
// GET /healthz on the gateway itself reports the fleet view (per-backend
// health, primary flag, per-dataset follower lag); every other route is
// proxied. See docs/OPERATIONS.md for the replication runbook.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"templar/internal/gateway"
)

func main() {
	var (
		addr      = flag.String("addr", ":8090", "listen address")
		backends  = flag.String("backends", "", "comma-separated backend base URLs; the first is the primary")
		maxLag    = flag.Int64("max-lag", 0, "read staleness bound: skip a follower whose replication lag for the requested dataset exceeds this many WAL sequences")
		healthEvr = flag.Duration("health-every", 2*time.Second, "backend health-poll period")
	)
	flag.Parse()

	var fleet []string
	for _, raw := range strings.Split(*backends, ",") {
		if b := strings.TrimSpace(raw); b != "" {
			fleet = append(fleet, b)
		}
	}
	if len(fleet) == 0 {
		fatal(fmt.Errorf("no backends (want -backends http://primary:8080,http://replica:8081,...)"))
	}
	g, err := gateway.New(fleet, gateway.Options{
		MaxLag:      *maxLag,
		HealthEvery: *healthEvr,
		Logger:      log.Default(),
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	go g.Run(ctx)

	log.Printf("templar-gateway: routing %d backend(s), primary=%s max-lag=%d, listening on %s",
		len(fleet), g.Primary(), *maxLag, *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           g,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("templar-gateway: signal received, shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "templar-gateway:", err)
	os.Exit(1)
}
