// Command templar-translate translates benchmark NLQs to SQL with any of
// the four evaluated systems, showing the ranked keyword configurations,
// the inferred join path, and the final SQL — the paper's §III-F example
// execution, end to end.
//
// Usage:
//
//	templar-translate -dataset mas -list                 # list task ids
//	templar-translate -dataset mas -task mas/papersInDomain/00
//	templar-translate -dataset mas -task ... -system Pipeline
//	templar-translate -dataset yelp -keywords "customers:select;Golden Cactus Grill:where"
//
// With -server, the translation runs against a live templar-serve
// process through the v2 API and the Go SDK (templar/pkg/client) instead
// of building an engine in-process — the round-trip proof that the wire
// contract carries the full pipeline:
//
//	templar-translate -server http://localhost:8080 -dataset mas -keywords "papers:select;Databases:where"
//	templar-translate -server http://localhost:8080 -dataset mas -task mas/papersInDomain/00
//
// (Server mode translates with the server's engine — always Pipeline+
// over the server's own log — so -system and the leave-one-out QFG below
// do not apply.)
//
// In local mode the QFG is built from the gold SQL of every benchmark
// task EXCEPT the one being translated (leave-one-out), so the
// demonstrated translation never relies on its own gold query.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/keyword"
	"templar/internal/nlidb"
	"templar/internal/qfg"
	"templar/internal/sqlparse"
	"templar/pkg/api"
	"templar/pkg/client"
)

func main() {
	var (
		dataset  = flag.String("dataset", "mas", "benchmark dataset (mas, yelp, imdb)")
		list     = flag.Bool("list", false, "list task ids and exit")
		taskID   = flag.String("task", "", "benchmark task id to translate")
		system   = flag.String("system", "Pipeline+", "system (Pipeline, Pipeline+, NaLIR, NaLIR+); local mode only")
		keywords = flag.String("keywords", "", "ad-hoc keywords: 'text:context[:op|:agg]' separated by ';'")
		kappa    = flag.Int("kappa", 5, "kappa")
		lambda   = flag.Float64("lambda", 0.8, "lambda")
		server   = flag.String("server", "", "translate against a running templar-serve base URL via the v2 API instead of in-process")
		timeout  = flag.Duration("timeout", 30*time.Second, "server mode: per-request deadline")
	)
	flag.Parse()

	ds, ok := datasets.ByName(*dataset)
	if !ok {
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}
	if *list {
		for _, t := range ds.Tasks {
			fmt.Printf("%-36s %s\n", t.ID, t.NLQ)
		}
		return
	}

	var kws []keyword.Keyword
	var nlq string
	var gold string
	hazard := false
	switch {
	case *taskID != "":
		for _, t := range ds.Tasks {
			if t.ID == *taskID {
				kws, nlq, gold, hazard = t.Keywords, t.NLQ, t.GoldCanonical, t.Hazard
			}
		}
		if kws == nil {
			fatal(fmt.Errorf("unknown task %q (use -list)", *taskID))
		}
	case *keywords != "":
		var err error
		kws, err = keyword.ParseSpec(*keywords)
		if err != nil {
			fatal(err)
		}
		nlq = *keywords
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *server != "" {
		serverMode(*server, *dataset, *timeout, kws, nlq, gold)
		return
	}

	graph, err := buildQFG(ds, *taskID)
	if err != nil {
		fatal(err)
	}
	opts := keyword.Options{K: *kappa, Lambda: *lambda, Obscurity: fragment.NoConstOp}
	model := embedding.New()
	var sys *nlidb.System
	switch strings.ToLower(*system) {
	case "pipeline":
		sys = nlidb.NewPipeline(ds.DB, model, opts)
	case "pipeline+":
		sys = nlidb.NewPipelinePlus(ds.DB, model, graph, true, opts)
	case "nalir":
		sys = nlidb.NewNaLIR(ds.DB, nlidb.DefaultNaLIRNoise(), opts)
	case "nalir+":
		sys = nlidb.NewNaLIRPlus(ds.DB, model, graph, nlidb.DefaultNaLIRNoise(), opts)
	default:
		fatal(fmt.Errorf("unknown system %q", *system))
	}

	fmt.Printf("NLQ:      %s\n", nlq)
	fmt.Printf("System:   %s\n", sys.Name())
	configs, err := sys.TopMappings(nlq, hazard, kws)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Top keyword-mapping configurations:")
	for i, cfg := range configs {
		if i >= 3 {
			break
		}
		fmt.Printf("  #%d score=%.3f (sim=%.3f qfg=%.3f)\n", i+1, cfg.Score, cfg.SimScore, cfg.QFGScore)
		for _, m := range cfg.Mappings {
			fmt.Printf("     %s\n", m)
		}
	}
	tr, err := sys.Translate(nlq, hazard, kws)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Join path: %s (weight %.3f)\n", tr.Path, tr.Path.TotalWeight)
	fmt.Printf("SQL:       %s\n", tr.Rendered)
	if tr.Tie {
		fmt.Println("WARNING: another query tied for the top rank")
	}
	if gold != "" {
		verdict := "MISMATCH"
		if tr.SQL == gold && !tr.Tie {
			verdict = "MATCH"
		}
		fmt.Printf("Gold:      %s\nVerdict:   %s\n", gold, verdict)
	}
}

// serverMode round-trips the translation through a running server's v2
// API with the Go SDK: keywords out, ranked configurations, join path and
// SQL back, structured errors decoded by code.
func serverMode(base, dataset string, timeout time.Duration, kws []keyword.Keyword, nlq, gold string) {
	c, err := client.New(base)
	if err != nil {
		fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	fmt.Printf("NLQ:      %s\n", nlq)
	fmt.Printf("System:   %s @ %s (v2 API)\n", dataset, base)
	in := wireKeywords(kws)
	mk, err := c.MapKeywords(ctx, dataset, api.MapKeywordsRequest{KeywordsInput: in, TopK: 3})
	if err != nil {
		fatal(err)
	}
	fmt.Println("Top keyword-mapping configurations:")
	for i, cfg := range mk.Configurations {
		fmt.Printf("  #%d score=%.3f (sim=%.3f qfg=%.3f)\n", i+1, cfg.Score, cfg.SimScore, cfg.QFGScore)
		for _, m := range cfg.Mappings {
			fmt.Printf("     %s -> %s (%.3f)\n", m.Keyword, m.Fragment, m.Sim)
		}
	}
	tr, err := c.TranslateOne(ctx, dataset, in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Join path: %s (weight %.3f)\n", strings.Join(tr.Path.Relations, "-"), tr.Path.TotalWeight)
	fmt.Printf("SQL:       %s\n", tr.Rendered)
	if tr.Tie {
		fmt.Println("WARNING: another query tied for the top rank")
	}
	if gold != "" {
		verdict := "MISMATCH"
		if tr.SQL == gold && !tr.Tie {
			verdict = "MATCH"
		}
		fmt.Printf("Gold:      %s\nVerdict:   %s\n", gold, verdict)
	}
}

// wireKeywords converts parsed keywords to the structured wire form.
func wireKeywords(kws []keyword.Keyword) api.KeywordsInput {
	out := make([]api.Keyword, len(kws))
	for i, kw := range kws {
		kj := api.Keyword{Text: kw.Text, Op: kw.Meta.Op, GroupBy: kw.Meta.GroupBy}
		switch kw.Meta.Context {
		case fragment.Select:
			kj.Context = "select"
		case fragment.From:
			kj.Context = "from"
		default:
			kj.Context = "where"
		}
		if len(kw.Meta.Aggs) > 0 {
			kj.Agg = kw.Meta.Aggs[0]
		}
		out[i] = kj
	}
	return api.KeywordsInput{Keywords: out}
}

// buildQFG folds every benchmark gold query except the held-out task.
func buildQFG(ds *datasets.Dataset, holdout string) (*qfg.Graph, error) {
	var entries []sqlparse.LogEntry
	for _, t := range ds.Tasks {
		if t.ID == holdout {
			continue
		}
		q, err := sqlparse.Parse(t.Gold)
		if err != nil {
			return nil, err
		}
		entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
	}
	return qfg.Build(entries, fragment.NoConstOp)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "templar-translate:", err)
	os.Exit(1)
}
