// Command bench2json converts `go test -bench` output on stdin into a JSON
// document on stdout, so CI can archive benchmark trajectories as
// machine-readable artifacts (see `make bench-json`).
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem ./... | bench2json
//
// Output shape:
//
//	{
//	  "goos": "linux", "goarch": "amd64", "cpu": "...",
//	  "benchmarks": [
//	    {"package": "templar/internal/qfg", "name": "BenchmarkDiceSnapshotID-8",
//	     "runs": 100000, "metrics": {"ns/op": 6.3, "B/op": 0, "allocs/op": 0}}
//	  ]
//	}
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Package string             `json:"package"`
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

type document struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	doc := document{Benchmarks: []benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line, pkg); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses "BenchmarkName-8  100  12.3 ns/op  0 B/op ...":
// a name, an iteration count, then (value, unit) pairs.
func parseBenchLine(line, pkg string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Package: pkg, Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
