// Command templar-serve runs the concurrent HTTP serving layer over one
// shared Templar instance bound to a bundled benchmark dataset. The query
// fragment graph is trained from the dataset's full gold-SQL log at
// startup, the keyword mapper precomputes its candidate index, and every
// request is answered by the same shared, read-only system under a bounded
// worker pool.
//
// Usage:
//
//	templar-serve -dataset mas -addr :8080 -workers 8
//
// Endpoints:
//
//	GET  /healthz
//	POST /v1/map-keywords  {"spec":"papers:select;Databases:where","top":3}
//	POST /v1/infer-joins   {"relations":["publication","domain"],"top_k":3}
//	POST /v1/translate     {"queries":[{"spec":"papers:select;Databases:where"}]}
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/keyword"
	"templar/internal/qfg"
	"templar/internal/serve"
	"templar/internal/sqlparse"
	"templar/internal/templar"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dataset = flag.String("dataset", "mas", "benchmark dataset (mas, yelp, imdb)")
		workers = flag.Int("workers", 0, "worker pool size (0 = min(GOMAXPROCS, 8))")
		kappa   = flag.Int("kappa", 5, "kappa: candidates kept per keyword")
		lambda  = flag.Float64("lambda", 0.8, "lambda: similarity vs log evidence weight")
		logJoin = flag.Bool("log-join", true, "use log-driven join path weights")
	)
	flag.Parse()

	var ds *datasets.Dataset
	for _, d := range datasets.All() {
		if strings.EqualFold(d.Name, *dataset) {
			ds = d
		}
	}
	if ds == nil {
		fatal(fmt.Errorf("unknown dataset %q (want mas, yelp or imdb)", *dataset))
	}

	graph, err := buildQFG(ds)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	sys := templar.New(ds.DB, embedding.New(), graph, templar.Options{
		Keyword: keyword.Options{K: *kappa, Lambda: *lambda},
		LogJoin: *logJoin,
	})
	srv := serve.NewServer(sys, ds.Name, *workers)
	log.Printf("templar-serve: dataset=%s log=%d queries index built in %s workers=%d",
		ds.Name, graph.Queries(), time.Since(start).Round(time.Millisecond), srv.Pool().Workers())
	log.Printf("templar-serve: listening on %s", *addr)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := httpSrv.ListenAndServe(); err != nil {
		fatal(err)
	}
}

// buildQFG folds every benchmark gold query into the training log.
func buildQFG(ds *datasets.Dataset) (*qfg.Graph, error) {
	entries := make([]sqlparse.LogEntry, 0, len(ds.Tasks))
	for _, t := range ds.Tasks {
		q, err := sqlparse.Parse(t.Gold)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", t.ID, err)
		}
		entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
	}
	return qfg.Build(entries, fragment.NoConstOp)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "templar-serve:", err)
	os.Exit(1)
}
