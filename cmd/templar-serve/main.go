// Command templar-serve runs the concurrent HTTP serving layer over one
// shared Templar instance bound to a bundled benchmark dataset. The query
// fragment graph is trained from the dataset's full gold-SQL log at
// startup and compiled into an immutable interned-fragment snapshot; the
// keyword mapper precomputes its candidate index, and every request is
// answered by the same shared, read-only engine under a bounded worker
// pool. The log stays live: POST /v1/log appends user queries, and each
// append republishes a fresh snapshot copy-on-write without blocking
// in-flight readers.
//
// Usage:
//
//	templar-serve -dataset mas -addr :8080 -workers 8 [-pprof]
//
// Endpoints:
//
//	GET  /healthz
//	POST /v1/map-keywords  {"spec":"papers:select;Databases:where","top":3}
//	POST /v1/infer-joins   {"relations":["publication","domain"],"top_k":3}
//	POST /v1/translate     {"queries":[{"spec":"papers:select;Databases:where"}]}
//	POST /v1/log           {"queries":[{"sql":"SELECT ...","count":2}]}
//
// With -pprof, the net/http/pprof profiling endpoints are mounted under
// /debug/pprof/ on the same listener (CPU: /debug/pprof/profile, heap:
// /debug/pprof/heap, …).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/keyword"
	"templar/internal/qfg"
	"templar/internal/serve"
	"templar/internal/sqlparse"
	"templar/internal/templar"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dataset   = flag.String("dataset", "mas", "benchmark dataset (mas, yelp, imdb)")
		workers   = flag.Int("workers", 0, "worker pool size (0 = min(GOMAXPROCS, 8))")
		kappa     = flag.Int("kappa", 5, "kappa: candidates kept per keyword")
		lambda    = flag.Float64("lambda", 0.8, "lambda: similarity vs log evidence weight")
		logJoin   = flag.Bool("log-join", true, "use log-driven join path weights")
		withPprof = flag.Bool("pprof", false, "mount net/http/pprof endpoints under /debug/pprof/")
	)
	flag.Parse()

	var ds *datasets.Dataset
	for _, d := range datasets.All() {
		if strings.EqualFold(d.Name, *dataset) {
			ds = d
		}
	}
	if ds == nil {
		fatal(fmt.Errorf("unknown dataset %q (want mas, yelp or imdb)", *dataset))
	}

	graph, err := buildQFG(ds)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	live := qfg.NewLive(graph)
	sys := templar.NewLive(ds.DB, embedding.New(), live, templar.Options{
		Keyword: keyword.Options{K: *kappa, Lambda: *lambda},
		LogJoin: *logJoin,
	})
	srv := serve.NewServer(sys, ds.Name, *workers)
	snap := live.CurrentSnapshot()
	log.Printf("templar-serve: dataset=%s log=%d queries (%d fragments, %d edges) index+snapshot built in %s workers=%d",
		ds.Name, snap.Queries(), snap.Vertices(), snap.Edges(),
		time.Since(start).Round(time.Millisecond), srv.Pool().Workers())

	handler := srv.Handler()
	if *withPprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("templar-serve: pprof enabled at /debug/pprof/")
	}
	log.Printf("templar-serve: listening on %s", *addr)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := httpSrv.ListenAndServe(); err != nil {
		fatal(err)
	}
}

// buildQFG folds every benchmark gold query into the training log.
func buildQFG(ds *datasets.Dataset) (*qfg.Graph, error) {
	entries := make([]sqlparse.LogEntry, 0, len(ds.Tasks))
	for _, t := range ds.Tasks {
		q, err := sqlparse.Parse(t.Gold)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", t.ID, err)
		}
		entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
	}
	return qfg.Build(entries, fragment.NoConstOp)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "templar-serve:", err)
	os.Exit(1)
}
