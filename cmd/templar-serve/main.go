// Command templar-serve runs the concurrent multi-tenant HTTP serving
// layer: one process hosts any number of named datasets, each behind its
// own Templar engine, all sharing one bounded worker pool. Engines are
// resolved per request from an atomic registry, so admin operations never
// block traffic.
//
// Cold start is a file read when a snapshot store is configured: with
// -store DIR, each dataset's packed QFG snapshot (DIR/<name>.qfg, see
// internal/store) is loaded when present — no SQL-log re-mine — and written
// after building otherwise, so the *next* boot is fast. Either way the log
// stays live: POST /v1/{dataset}/log appends user queries and republishes
// an immutable snapshot copy-on-write without blocking in-flight readers.
//
// With -wal DIR (requires -store), every log append is additionally made
// durable in a per-tenant write-ahead log (DIR/<name>.wal, see
// internal/wal) before it is acknowledged: a crash between snapshots loses
// nothing. Boot replays the WAL tail past the snapshot's recorded
// sequence, and a background compactor folds grown logs back into fresh
// snapshots (-wal-compact-bytes, -wal-compact-every). -wal-sync trades
// durability for throughput: 0 fsyncs every append, an interval batches
// them. See docs/DURABILITY.md for the full model and operator runbook.
//
// With -follow URL (excludes -store/-wal), the process runs as a
// read-only follower replica of the primary at URL: each dataset
// bootstraps from the primary's snapshot endpoint and tails its WAL
// stream (GET /v2/{dataset}/wal), folding records through the same
// replay path boot recovery uses. Appends are answered with a 307
// redirect to the primary; replication lag is reported per dataset on
// /healthz. Put cmd/templar-gateway in front to route a fleet. See
// docs/ARCHITECTURE.md (replication) and docs/OPERATIONS.md (runbook).
//
// Usage:
//
//	templar-serve -datasets mas,yelp,imdb -store ./snapshots -addr :8080 [-wal ./wal] [-workers 8] [-pprof]
//	templar-serve -datasets mas,yelp,imdb -follow http://primary:8080 -addr :8081
//
// The first -datasets entry is the default dataset: the legacy unprefixed
// routes (/v1/map-keywords, …) alias it, so single-tenant clients keep
// working unchanged.
//
// Endpoints (see README.md for the full request/response reference and
// docs/openapi.yaml for the machine-readable v2 contract):
//
//	GET    /healthz
//	GET    /v2/datasets
//	POST   /v2/{dataset}/map-keywords   {"spec":"papers:select;Databases:where","top_k":3}
//	POST   /v2/{dataset}/infer-joins    {"relations":["publication","domain"],"top_k":3}
//	POST   /v2/{dataset}/translate      {"queries":[{"spec":"papers:select;Databases:where"}]}
//	POST   /v2/{dataset}/log            {"queries":[{"sql":"SELECT ...","count":2}]}
//	POST   /v1/...                      frozen legacy contract (string errors, "top")
//	GET    /admin/datasets
//	POST   /admin/datasets              {"name":"imdb"}  — load from store or build
//	DELETE /admin/datasets/{name}
//
// With -pprof, the net/http/pprof profiling endpoints are mounted under
// /debug/pprof/ on the same listener (CPU: /debug/pprof/profile, heap:
// /debug/pprof/heap, …).
//
// Overload control (see docs/OPERATIONS.md): -max-inflight bounds the
// admitted requests server-wide, shedding the expensive endpoints first
// with 429 + Retry-After; -tenant-rps/-tenant-burst/-tenant-max-inflight
// set default per-dataset quotas (override per dataset via
// PUT /admin/datasets/{name}/limits). SIGTERM/SIGINT triggers a graceful
// drain: /healthz flips to "draining" (load balancers stop routing), new
// work is refused with 503, in-flight requests finish, the WAL is swept,
// synced and closed, and the process exits — all within -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/keyword"
	"templar/internal/qfg"
	"templar/internal/repl"
	"templar/internal/serve"
	"templar/internal/sqlparse"
	"templar/internal/store"
	"templar/internal/templar"
	"templar/internal/wal"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		datasetCS  = flag.String("datasets", "mas", "comma-separated datasets to serve (mas, yelp, imdb); the first is the default")
		dataset    = flag.String("dataset", "", "deprecated: single dataset (alias for -datasets)")
		storeDir   = flag.String("store", "", "snapshot store directory: load packed .qfg snapshots when present, write them after building otherwise")
		walDir     = flag.String("wal", "", "write-ahead log directory: make log appends durable before acknowledging them (requires -store)")
		walSync    = flag.Duration("wal-sync", 0, "WAL fsync interval (0 = fsync every append; an interval batches fsyncs, trading the tail for throughput)")
		walBytes   = flag.Int64("wal-compact-bytes", 4<<20, "compact a tenant's WAL into a fresh snapshot once its live segment exceeds this many bytes")
		walEvery   = flag.Duration("wal-compact-every", 15*time.Second, "how often the background compactor sweeps WAL-armed tenants")
		follow     = flag.String("follow", "", "primary base URL: serve as a read-only follower replica (bootstrap from the primary's snapshot, tail its WAL stream; appends redirect to the primary; excludes -store/-wal)")
		workers    = flag.Int("workers", 0, "worker pool size (0 = min(GOMAXPROCS, 8))")
		kappa      = flag.Int("kappa", 5, "kappa: candidates kept per keyword")
		lambda     = flag.Float64("lambda", 0.8, "lambda: similarity vs log evidence weight")
		logJoin    = flag.Bool("log-join", true, "use log-driven join path weights")
		adminToken = flag.String("admin-token", "", "require 'Authorization: Bearer <token>' on /admin routes (empty = open)")
		withPprof  = flag.Bool("pprof", false, "mount net/http/pprof endpoints under /debug/pprof/")
		accessLog  = flag.Bool("access-log", false, "log one line per request (method, path, status, latency, request id)")
		maxBody    = flag.Int64("max-body-bytes", 0, "request body byte cap (0 = default 1MiB); structured 413 beyond it")
		maxBatch   = flag.Int("max-batch", 0, "translate/log batch size cap (0 = defaults 64/256); structured 422 beyond it")
		maxInFly   = flag.Int("max-inflight", 0, "server-wide admitted-request bound (0 = unbounded); past it, expensive endpoints shed first with 429 + Retry-After")
		tenantRPS  = flag.Float64("tenant-rps", 0, "default per-dataset sustained request rate (0 = unlimited); token-bucket, 429 rate_limited when dry")
		tenantBur  = flag.Int("tenant-burst", 0, "default per-dataset burst above -tenant-rps (0 with a rate = max(1, ceil(rate)))")
		tenantFly  = flag.Int("tenant-max-inflight", 0, "default per-dataset in-flight quota (0 = unlimited)")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline on SIGTERM/SIGINT: in-flight requests plus the final WAL sweep must finish within it")
	)
	flag.Parse()

	names := strings.Split(*datasetCS, ",")
	if *dataset != "" {
		names = []string{*dataset}
	}
	if *walDir != "" && *storeDir == "" {
		fatal(fmt.Errorf("-wal requires -store: the write-ahead log compacts into, and recovers against, packed snapshots"))
	}
	if *follow != "" && (*storeDir != "" || *walDir != "") {
		fatal(fmt.Errorf("-follow excludes -store/-wal: a follower replicates the primary's durability over HTTP, it does not own any"))
	}
	opts := templar.Options{
		Keyword: keyword.Options{K: *kappa, Lambda: *lambda},
		LogJoin: *logJoin,
	}
	// Followers tail the primary on a cancelable context so drain can park
	// them before the listener closes; on a primary the group stays empty.
	followCtx, stopFollowers := context.WithCancel(context.Background())
	defer stopFollowers()
	var followerWG sync.WaitGroup

	loader := func(ctx context.Context, name string) (*serve.Tenant, error) {
		return loadTenant(ctx, name, *storeDir, *walDir, *walSync, opts)
	}
	if *follow != "" {
		// On a follower, admin-loaded datasets are replicas too: bootstrap
		// from the primary and start the tail loop, never own a WAL.
		loader = func(ctx context.Context, name string) (*serve.Tenant, error) {
			t, err := followTenant(ctx, name, *follow, opts)
			if err != nil {
				return nil, err
			}
			f := t.Follower
			followerWG.Add(1)
			go func() {
				defer followerWG.Done()
				f.Run(followCtx)
			}()
			return t, nil
		}
	}

	reg := serve.NewRegistry()
	defaultName := ""
	for _, raw := range names {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		tenant, err := loader(context.Background(), name)
		if err != nil {
			fatal(err)
		}
		if err := reg.Add(tenant); err != nil {
			fatal(err)
		}
		if defaultName == "" {
			defaultName = tenant.Name
		}
		snap := tenant.Sys.Snapshot()
		log.Printf("templar-serve: dataset=%s source=%s mmap=%t log=%d queries (%d fragments, %d edges) ready in %s",
			tenant.Name, tenant.Source, tenant.Mapping != nil, snap.Queries(), snap.Vertices(), snap.Edges(),
			tenant.LoadTime.Round(time.Millisecond))
	}
	if defaultName == "" {
		fatal(fmt.Errorf("no datasets to serve (want -datasets mas,yelp,imdb)"))
	}

	srv := serve.NewRegistryServer(reg, defaultName, *workers, loader).
		WithAdminToken(*adminToken).
		WithLimits(*maxBody, *maxBatch, *maxBatch).
		WithAdmission(*maxInFly)
	if *tenantRPS > 0 || *tenantBur > 0 || *tenantFly > 0 {
		srv.WithTenantDefaults(serve.TenantLimits{
			PerSecond:   *tenantRPS,
			Burst:       *tenantBur,
			MaxInFlight: *tenantFly,
		})
		log.Printf("templar-serve: per-dataset defaults rps=%g burst=%d max-inflight=%d", *tenantRPS, *tenantBur, *tenantFly)
	}
	if *accessLog {
		srv.WithAccessLog(log.Default())
	}
	log.Printf("templar-serve: serving %d dataset(s), default=%s workers=%d max-inflight=%d",
		reg.Len(), defaultName, srv.Pool().Workers(), *maxInFly)

	// The compactor runs on a cancelable context so drain can stop it and
	// take over the final sweep without racing a background compaction.
	compactCtx, stopCompactor := context.WithCancel(context.Background())
	defer stopCompactor()
	compactorDone := make(chan struct{})
	var compactor *serve.Compactor
	if *walDir != "" {
		compactor = serve.NewCompactor(reg, *walBytes, *walEvery).WithLogger(log.Default())
		go func() {
			defer close(compactorDone)
			compactor.Run(compactCtx)
		}()
		log.Printf("templar-serve: WAL compactor sweeping every %s (threshold %d bytes)", *walEvery, *walBytes)
	} else {
		close(compactorDone)
	}

	handler := srv.Handler()
	if *withPprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("templar-serve: pprof enabled at /debug/pprof/")
	}
	log.Printf("templar-serve: listening on %s", *addr)
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Slowloris guard: a client must finish its request header quickly,
		// and idle keep-alive connections are reaped so a drain is not held
		// hostage by sockets with no request on them.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	sigCtx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stopSignals()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	select {
	case err := <-serveErr:
		fatal(err) // bind failure or listener death — nothing to drain
	case <-sigCtx.Done():
	}
	// Restore default signal handling: a second SIGTERM/SIGINT kills the
	// process immediately instead of being swallowed mid-drain.
	stopSignals()

	// Graceful drain, in dependency order, all under one deadline:
	// refuse new work, finish what was admitted, then quiesce the WAL so
	// the next boot replays nothing that was already folded.
	start := time.Now()
	log.Printf("templar-serve: signal received, draining (deadline %s)", *drainWait)
	srv.BeginDrain() // healthz flips to "draining"; non-exempt requests get 503
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(ctx) // stop accepting, wait for handlers
	drainErr := srv.DrainWait(ctx)       // admitted in-flight gauge reaches 0
	stopCompactor()
	<-compactorDone // the background sweeper is parked; the final sweep is ours
	stopFollowers()
	followerWG.Wait() // replication pollers parked; no half-applied batch remains
	compacted := 0
	if compactor != nil && drainErr == nil {
		compacted = compactor.Sweep() // fold the WAL tail into fresh snapshots
	}
	walSynced := 0
	for _, t := range reg.Tenants() {
		if t.WAL == nil {
			continue
		}
		if err := t.WAL.Sync(); err != nil {
			log.Printf("templar-serve: dataset=%s final WAL fsync: %v", t.Name, err)
			continue
		}
		if err := t.WAL.Close(); err != nil {
			log.Printf("templar-serve: dataset=%s WAL close: %v", t.Name, err)
			continue
		}
		walSynced++
	}
	// Release snapshot mappings last: the drain and the compaction sweep
	// above were the final readers of any snapshot aliasing the boot file.
	for _, t := range reg.Tenants() {
		if t.Mapping != nil {
			if err := t.Mapping.Close(); err != nil {
				log.Printf("templar-serve: dataset=%s snapshot unmap: %v", t.Name, err)
			}
		}
	}

	ov := srv.Overload()
	clean := shutdownErr == nil && drainErr == nil
	log.Printf("templar-serve: shutdown clean=%t took=%s inflight=%d admitted=%d shed_draining=%d compacted=%d wal_closed=%d",
		clean, time.Since(start).Round(time.Millisecond), ov.InFlight, ov.Admitted, ov.ShedDraining, compacted, walSynced)
	if !clean {
		// In-flight work outlived the deadline: exit nonzero so operators
		// and orchestrators see the drain was forced, not graceful. The WAL
		// was still synced above — acknowledged appends are on disk, and
		// anything unfolded replays at the next boot.
		fatal(fmt.Errorf("drain deadline exceeded after %s (shutdown: %v, drain: %v)", *drainWait, shutdownErr, drainErr))
	}
}

// loadTenant materializes one dataset's serving engine: from the snapshot
// store when a packed file exists (cold start = one file read), by
// re-mining the gold-SQL log otherwise — in which case the freshly built
// snapshot is packed back into the store so the next boot is fast. The
// engine always serves a live log; appends keep working either way because
// a store-loaded snapshot is rehydrated into a builder graph. With a WAL
// directory, the tenant's write-ahead log is attached last: any records
// past the snapshot's recorded sequence are replayed, so the engine comes
// up byte-identical to one that never crashed. ctx honors the Loader
// contract: an admin client that disconnects mid-build stops the re-mine
// instead of finishing a doomed engine on a pool worker.
func loadTenant(ctx context.Context, name, storeDir, walDir string, walSync time.Duration, opts templar.Options) (*serve.Tenant, error) {
	ds, ok := datasets.ByName(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q (want mas, yelp or imdb)", serve.ErrUnknownDataset, name)
	}

	start := time.Now()
	var live *qfg.Live
	source := "built"
	path := ""
	var snapshotSeq uint64
	var mapped *store.Mapped
	if storeDir != "" {
		path = filepath.Join(storeDir, store.Filename(ds.Name))
		// Open, not ReadFile: a v3 archive is served straight out of the
		// page cache (interner strings and CSR arrays alias the mapping),
		// so cold start does no per-fragment allocation and co-located
		// processes share one physical copy. Pre-v3 archives fall back to
		// the copying decode inside Open.
		switch m, err := store.Open(path); {
		case err == nil:
			live = qfg.NewLiveFromSnapshot(m.Snapshot)
			source = "store"
			snapshotSeq = m.WalSeq
			if m.Mmapped() {
				mapped = m
			}
		case errors.Is(err, fs.ErrNotExist):
			// First boot for this dataset: fall through to the build.
		default:
			// Unreadable archive (truncated, corrupt, foreign): rebuild from
			// the log and overwrite it below rather than failing the boot.
			log.Printf("templar-serve: ignoring snapshot %s: %v", path, err)
		}
	}
	if live == nil {
		graph, err := buildQFG(ctx, ds)
		if err != nil {
			return nil, err
		}
		live = qfg.NewLive(graph)
		if path != "" {
			if err := os.MkdirAll(storeDir, 0o777); err != nil {
				return nil, err
			}
			if err := store.WriteFile(path, ds.Name, live.CurrentSnapshot()); err != nil {
				return nil, fmt.Errorf("packing %s: %w", path, err)
			}
			log.Printf("templar-serve: packed %s snapshot into %s", ds.Name, path)
		}
	}
	sys := templar.NewLive(ds.DB, embedding.New(), live, opts)
	tenant := &serve.Tenant{
		Name:        ds.Name,
		Sys:         sys,
		Source:      source,
		StorePath:   path,
		SnapshotSeq: snapshotSeq,
	}
	if mapped != nil {
		// Guarded assignment: a nil *store.Mapped stored directly in the
		// io.Closer field would make Mapping != nil.
		tenant.Mapping = mapped
	}
	if walDir != "" {
		if err := os.MkdirAll(walDir, 0o777); err != nil {
			return nil, err
		}
		rec, err := serve.AttachWAL(tenant, walDir, wal.Options{SyncInterval: walSync})
		if err != nil {
			return nil, err
		}
		if n := len(rec.Records); n > 0 || rec.DroppedBytes > 0 || rec.CompactionPending {
			replayed := 0
			for _, r := range rec.Records {
				if r.Seq > snapshotSeq {
					replayed++
				}
			}
			msg := fmt.Sprintf("templar-serve: dataset=%s WAL recovery: %d record(s) scanned, %d replayed past snapshot seq %d",
				ds.Name, n, replayed, snapshotSeq)
			if rec.DroppedBytes > 0 {
				msg += fmt.Sprintf(", %d torn tail byte(s) dropped (%v)", rec.DroppedBytes, rec.Cause)
			}
			if rec.CompactionPending {
				msg += ", interrupted compaction completed"
			}
			log.Print(msg)
		}
	}
	tenant.LoadTime = time.Since(start)
	return tenant, nil
}

// followTenant materializes one dataset as a read-only follower replica:
// download the primary's packed snapshot (the watermark names the WAL
// sequence it covers), build a live engine from it, and hand back a
// tenant armed with the tail loop the caller starts. The tenant carries
// no WAL and no store path — durability is the primary's job; a follower
// that restarts simply re-bootstraps.
func followTenant(ctx context.Context, name, primary string, opts templar.Options) (*serve.Tenant, error) {
	ds, ok := datasets.ByName(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q (want mas, yelp or imdb)", serve.ErrUnknownDataset, name)
	}
	start := time.Now()
	rc, err := repl.NewClient(primary, nil)
	if err != nil {
		return nil, err
	}
	live, seq, err := repl.Bootstrap(ctx, rc, ds.Name)
	if err != nil {
		return nil, fmt.Errorf("bootstrapping %s from %s: %w", ds.Name, primary, err)
	}
	sys := templar.NewLive(ds.DB, embedding.New(), live, opts)
	f := repl.NewFollower(rc, ds.Name, live, seq, repl.FollowerOptions{Logger: log.Default()})
	log.Printf("templar-serve: dataset=%s bootstrapped from %s at seq %d", ds.Name, primary, seq)
	return &serve.Tenant{
		Name:     ds.Name,
		Sys:      sys,
		Source:   "replica",
		Follower: f,
		Primary:  primary,
		LoadTime: time.Since(start),
	}, nil
}

// buildQFG folds every benchmark gold query into the training log,
// checking for cancellation between queries so an abandoned admin load
// frees its pool worker promptly.
func buildQFG(ctx context.Context, ds *datasets.Dataset) (*qfg.Graph, error) {
	entries := make([]sqlparse.LogEntry, 0, len(ds.Tasks))
	for _, t := range ds.Tasks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		q, err := sqlparse.Parse(t.Gold)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", t.ID, err)
		}
		entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
	}
	return qfg.Build(entries, fragment.NoConstOp)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "templar-serve:", err)
	os.Exit(1)
}
