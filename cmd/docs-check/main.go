// Command docs-check validates the documentation layer: it walks every
// Markdown file in the repository and verifies that relative links point
// at files or directories that actually exist, so docs can't silently rot
// as code moves. External links (http/https/mailto) and pure anchors are
// skipped; a `#fragment` suffix on a relative link is ignored for the
// existence check.
//
// It is wired into `make docs-check` (with the gofmt drift check and
// `go vet`) and runs in CI. Run it from the repository root:
//
//	go run ./cmd/docs-check
//
// Exit status is non-zero if any link is broken, listing every offender.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline Markdown links [text](target). Reference-style
// links and autolinks are out of scope — the repo's docs use inline form.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	broken := 0
	checked := 0
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.EqualFold(filepath.Ext(path), ".md") {
			return nil
		}
		// PAPERS.md and SNIPPETS.md are retrieved reference corpora whose
		// links point into their source repositories, not this one.
		if path == "PAPERS.md" || path == "SNIPPETS.md" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			checked++
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				fmt.Fprintf(os.Stderr, "docs-check: %s: broken link %q (%s)\n", path, m[1], resolved)
				broken++
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "docs-check:", err)
		os.Exit(1)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "docs-check: %d broken link(s)\n", broken)
		os.Exit(1)
	}
	fmt.Printf("docs-check: %d relative link(s) OK\n", checked)
}
