// Command templar-load is the deterministic load generator for Templar's
// v2 serving layer: it synthesizes a seeded, weighted request mix mined
// from the benchmark datasets' gold-SQL logs (keyword mapping, join
// inference, batched translation, live log appends with sessions, and
// feedback pairs — a tagged translate followed by an accept/reject/
// correct verdict at seeded ratios, "feedback=N" in the mix) and
// drives a server with N concurrent workers through the public Go SDK,
// reporting throughput and p50/p95/p99 latency per dataset and endpoint.
//
// The request stream is a pure function of (-datasets, -mix, -seed): two
// runs with the same flags replay the identical stream, byte for byte —
// -print emits the stream and its fingerprint without running it, so a
// stream can be diffed across machines or pinned in CI.
//
// Usage:
//
//	templar-load -server http://localhost:8080 -datasets mas,yelp -requests 5000 -workers 16
//	templar-load -self -datasets mas -requests 500 -o load.json   # self-hosted in-process server
//	templar-load -datasets mas,yelp,imdb -requests 100 -print     # dump the stream, don't run
//
// The -o report is JSON shape-compatible with the cmd/bench2json
// benchmark artifacts (tooling reading .benchmarks[] needs no changes);
// the full per-endpoint detail rides under .workload.
//
// By default the run is a closed loop: each worker sends its next request
// when its last one finishes, so the offered load self-limits to -workers
// in flight and can never overrun a server's admission bound. -rate R
// switches the run open-loop — request i is dispatched at start + i/R,
// like a population of independent users — which is the only mode that
// can push a server into shedding. An overload smoke run pairs it with
// -self -max-inflight N (admission-bounded in-process server) and
// -expect-shed, which inverts the exit criteria: sheds must appear, 5xx
// must not, and shed requests don't count as failures.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/qfg"
	"templar/internal/serve"
	"templar/internal/sqlparse"
	"templar/internal/templar"
	"templar/internal/workload"
	"templar/pkg/client"
)

func main() {
	var (
		server    = flag.String("server", "", "target server base URL (empty with -self: spin an in-process server)")
		self      = flag.Bool("self", false, "serve the datasets in-process on a loopback listener and drive that")
		datasetCS = flag.String("datasets", "mas", "comma-separated datasets to mine and target (mas, yelp, imdb)")
		seed      = flag.Uint64("seed", 1, "stream seed: same (datasets, mix, seed) = same request stream")
		requests  = flag.Int("requests", 1000, "how many requests to synthesize")
		workers   = flag.Int("workers", 8, "concurrent client workers")
		mixSpec   = flag.String("mix", "", `operation weights, e.g. "map=45,infer=25,translate=20,log=10,feedback=5" (empty = default mix)`)
		sessions  = flag.Float64("session-frac", -1, "fraction of log appends folded as sessions (-1 = mix default)")
		out       = flag.String("o", "", "write the JSON report here (bench2json-compatible document)")
		print     = flag.Bool("print", false, "print the synthesized stream as JSON lines plus its fingerprint, then exit")
		retries   = flag.Int("retries", 2, "SDK retry budget for idempotent calls (5xx/transport/429, jittered backoff)")
		rate      = flag.Float64("rate", 0, "open-loop arrival rate in requests/sec (0 = closed loop); size -workers above rate × latency")
		maxInFly  = flag.Int("max-inflight", 0, "with -self: bound the in-process server's admitted requests so it sheds under -rate overload")
		expShed   = flag.Bool("expect-shed", false, "overload-run exit criteria: require shed > 0 and server errors == 0 instead of treating sheds as failures")
	)
	flag.Parse()

	mix, err := workload.ParseMix(*mixSpec)
	if err != nil {
		fatal(err)
	}
	if *sessions >= 0 {
		if *sessions > 1 {
			fatal(fmt.Errorf("-session-frac %v outside [0, 1]", *sessions))
		}
		mix.SessionFraction = *sessions
	}
	names := splitNames(*datasetCS)
	if len(names) == 0 {
		fatal(fmt.Errorf("no datasets (want -datasets mas,yelp,imdb)"))
	}
	profiles, err := workload.MineProfiles(names)
	if err != nil {
		fatal(err)
	}
	gen, err := workload.NewGenerator(profiles, mix, *seed)
	if err != nil {
		fatal(err)
	}
	if *requests <= 0 {
		fatal(fmt.Errorf("-requests must be positive"))
	}
	stream := gen.Generate(*requests)

	if *print {
		enc := json.NewEncoder(os.Stdout)
		for _, req := range stream {
			if err := enc.Encode(req); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "templar-load: %d requests, fingerprint %s\n",
			len(stream), workload.Fingerprint(stream))
		return
	}

	base := *server
	if base == "" {
		if !*self {
			fatal(fmt.Errorf("no target: pass -server URL or -self"))
		}
		base, err = selfServe(names, *workers, *maxInFly)
		if err != nil {
			fatal(err)
		}
	} else if *maxInFly > 0 {
		fatal(fmt.Errorf("-max-inflight only applies to the -self in-process server; bound a real server with templar-serve -max-inflight"))
	}
	c, err := client.New(base, client.WithRetries(*retries))
	if err != nil {
		fatal(err)
	}
	if _, err := c.Health(context.Background()); err != nil {
		fatal(fmt.Errorf("server %s unhealthy: %w", base, err))
	}

	fmt.Fprintf(os.Stderr, "templar-load: %d requests (seed=%d, fingerprint %.12s…) against %s with %d workers\n",
		len(stream), *seed, workload.Fingerprint(stream), base, *workers)
	rep, err := workload.Run(context.Background(), workload.RunConfig{
		Client:   c,
		Workers:  *workers,
		Requests: stream,
		Seed:     *seed,
		Mix:      mix,
		Rate:     *rate,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Summary())

	if *out != "" {
		raw, err := rep.EncodeJSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(raw, '\n'), 0o666); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "templar-load: wrote %s\n", *out)
	}
	if rep.Redirects > 0 {
		// Behind a gateway or follower replica, appends bounce to the
		// primary with 307; the SDK replays them there and they succeed.
		// Redirected calls are successes, never counted into rep.Errors.
		fmt.Fprintf(os.Stderr, "templar-load: %d requests were redirected to the primary and succeeded there\n", rep.Redirects)
	}
	if rep.Errors > 0 {
		fatal(fmt.Errorf("%d requests failed", rep.Errors))
	}
	if *expShed {
		// Overload smoke criteria: the server must have shed (the run
		// actually overran the bound) and must never have fallen over.
		if rep.Shed == 0 {
			fatal(fmt.Errorf("-expect-shed: no requests were shed — the run never overran the admission bound (raise -rate or lower -max-inflight)"))
		}
		if rep.ServerErrors > 0 {
			fatal(fmt.Errorf("-expect-shed: %d server errors (5xx) — overload must shed with 429, not fail", rep.ServerErrors))
		}
		fmt.Fprintf(os.Stderr, "templar-load: overload criteria met: %d shed, 0 server errors\n", rep.Shed)
	}
}

// selfServe builds live engines for the named datasets, mounts a
// registry server on a loopback listener and returns its base URL — the
// zero-setup mode CI's load-smoke artifact uses. maxInFlight > 0 bounds
// the server's admission so an open-loop run can exercise shedding.
func selfServe(names []string, workers, maxInFlight int) (string, error) {
	reg := serve.NewRegistry()
	defaultName := ""
	for _, name := range names {
		ds, ok := datasets.ByName(name)
		if !ok {
			return "", fmt.Errorf("unknown dataset %q", name)
		}
		start := time.Now()
		entries := make([]sqlparse.LogEntry, 0, len(ds.Tasks))
		for _, task := range ds.Tasks {
			q, err := sqlparse.Parse(task.Gold)
			if err != nil {
				return "", fmt.Errorf("%s: %w", task.ID, err)
			}
			entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
		}
		graph, err := qfg.Build(entries, fragment.NoConstOp)
		if err != nil {
			return "", err
		}
		sys := templar.NewLive(ds.DB, embedding.New(), qfg.NewLive(graph), templar.Options{LogJoin: true})
		if err := reg.Add(&serve.Tenant{Name: ds.Name, Sys: sys, Source: "built", LoadTime: time.Since(start)}); err != nil {
			return "", err
		}
		if defaultName == "" {
			defaultName = ds.Name
		}
	}
	srv := serve.NewRegistryServer(reg, defaultName, workers, nil).WithAdmission(maxInFlight)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go func() {
		if err := http.Serve(ln, srv.Handler()); err != nil {
			fatal(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "templar-load: self-serving %s on %s\n", strings.Join(names, ","), base)
	return base, nil
}

func splitNames(cs string) []string {
	var out []string
	for _, raw := range strings.Split(cs, ",") {
		if name := strings.TrimSpace(raw); name != "" {
			out = append(out, name)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "templar-load:", err)
	os.Exit(1)
}
