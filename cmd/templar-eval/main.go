// Command templar-eval regenerates the paper's evaluation artifacts: the
// dataset statistics (Table II), the four-system accuracy comparison
// (Table III), the LogJoin ablation (Table IV), the κ and λ parameter
// sweeps (Figures 5 and 6), and the obscurity-level ablation described in
// §VII-B.
//
// Usage:
//
//	templar-eval -table 2         # Table II
//	templar-eval -table 3         # Table III (NaLIR, NaLIR+, Pipeline, Pipeline+)
//	templar-eval -table 4         # Table IV (LogJoin N/Y)
//	templar-eval -figure 5        # accuracy vs kappa
//	templar-eval -figure 6        # accuracy vs lambda
//	templar-eval -ablation obscurity
//	templar-eval -all             # everything
//	templar-eval -golden internal/eval/testdata/golden   # regenerate golden corpora
//	templar-eval -counterfactual counterfactual.json     # feedback-learning gate
//
// Flags -kappa, -lambda, -obscurity and -dataset adjust the operating point
// and restrict the benchmark set.
//
// -counterfactual runs the feedback-loop replay (see internal/eval's
// counterfactual harness and docs/LEARNING.md): train on a seeded
// partial log, replay the golden battery against the pinned oracle
// answers, ingest the held-out gold SQL as accept/correct feedback,
// replay again, and gate on strict obscured improvement with zero
// Full-visibility regressions. The deterministic report is written to
// the given file and the command exits non-zero on any gate violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"templar/internal/datasets"
	"templar/internal/eval"
	"templar/internal/fragment"
)

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate a table (2, 3 or 4)")
		figure    = flag.Int("figure", 0, "regenerate a figure (5 or 6)")
		ablation  = flag.String("ablation", "", "run an ablation (obscurity, design, sessions)")
		all       = flag.Bool("all", false, "regenerate every table and figure")
		kappa     = flag.Int("kappa", 5, "kappa: candidate mappings kept per keyword")
		lambda    = flag.Float64("lambda", 0.8, "lambda: similarity weight vs log-driven weight")
		obscurity = flag.String("obscurity", "NoConstOp", "QFG obscurity level (Full, NoConst, NoConstOp)")
		dataset   = flag.String("dataset", "", "restrict to one dataset (MAS, Yelp, IMDB)")
		breakdown = flag.String("breakdown", "", "per-template breakdown for one system (Pipeline, Pipeline+, NaLIR, NaLIR+)")
		headline  = flag.Bool("headline", false, "print the abstract's 'up to N%' improvement claim")
		golden    = flag.String("golden", "", "regenerate the golden end-to-end corpora into this directory (all datasets × all obscurity levels)")
		counterf  = flag.String("counterfactual", "", "run the feedback-learning counterfactual gate and write its JSON report to this file")
		goldenDir = flag.String("golden-dir", filepath.Join("internal", "eval", "testdata", "golden"), "committed golden corpora the counterfactual gate checks byte-identity against (empty = skip the check)")
		cfHoldout = flag.Float64("cf-holdout", 0, "counterfactual holdout fraction (0 = default 0.5)")
		cfWeight  = flag.Int("cf-weight", 0, "counterfactual correction weight (0 = default 1, the exact-convergence point)")
		cfSeed    = flag.Uint64("cf-seed", 0, "counterfactual split/ingestion seed (0 = default 1)")
	)
	flag.Parse()

	ob, err := parseObscurity(*obscurity)
	if err != nil {
		fatal(err)
	}
	opts := eval.Options{K: *kappa, Lambda: *lambda, Obscurity: ob}

	sets := datasets.All()
	if *dataset != "" {
		var filtered []*datasets.Dataset
		for _, ds := range sets {
			if strings.EqualFold(ds.Name, *dataset) {
				filtered = append(filtered, ds)
			}
		}
		if len(filtered) == 0 {
			fatal(fmt.Errorf("unknown dataset %q", *dataset))
		}
		sets = filtered
	}
	order := make([]string, len(sets))
	for i, ds := range sets {
		order[i] = ds.Name
	}

	ran := false
	if *all || *table == 2 {
		fmt.Print(eval.TableII(sets))
		fmt.Println()
		ran = true
	}
	if *all || *table == 3 {
		out, err := eval.TableIII(sets, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		fmt.Println()
		ran = true
	}
	if *all || *table == 4 {
		out, err := eval.TableIV(sets, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		fmt.Println()
		ran = true
	}
	if *all || *figure == 5 {
		series, err := eval.Figure5(sets, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(eval.RenderSweep("Figure 5: Pipeline+ FQ accuracy vs kappa (lambda=0.8)", "kappa", series, order))
		fmt.Print(eval.RenderChart("Figure 5 (chart)", "kappa", series, order))
		fmt.Println()
		ran = true
	}
	if *all || *figure == 6 {
		series, err := eval.Figure6(sets, []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(eval.RenderSweep("Figure 6: Pipeline+ FQ accuracy vs lambda (kappa=5)", "lambda", series, order))
		fmt.Print(eval.RenderChart("Figure 6 (chart)", "lambda", series, order))
		fmt.Println()
		ran = true
	}
	if *all || *ablation == "obscurity" {
		out, err := eval.ObscurityAblation(sets, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		fmt.Println()
		ran = true
	}
	if *all || *ablation == "design" {
		out, err := eval.DesignAblation(sets, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		fmt.Println()
		ran = true
	}
	if *all || *ablation == "sessions" {
		out, err := eval.SessionExperiment(sets, []float64{0, 0.25, 0.5, 0.75}, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		ran = true
	}
	if *all || *headline {
		imps, err := eval.Headline(sets, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(eval.RenderHeadline(imps))
		fmt.Println()
		ran = true
	}
	if *golden != "" {
		gopts := eval.DefaultGoldenOptions()
		gopts.K, gopts.Lambda = *kappa, *lambda
		if err := writeGolden(*golden, sets, gopts); err != nil {
			fatal(err)
		}
		ran = true
	}
	if *counterf != "" {
		names := make([]string, len(sets))
		for i, ds := range sets {
			names[i] = ds.Name
		}
		rep, err := eval.RunCounterfactual(names, eval.CounterfactualOptions{
			HoldoutFraction: *cfHoldout,
			Weight:          *cfWeight,
			Seed:            *cfSeed,
			GoldenDir:       *goldenDir,
		})
		if err != nil {
			fatal(err)
		}
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*counterf, append(raw, '\n'), 0o666); err != nil {
			fatal(err)
		}
		fmt.Print(rep.Summary())
		fmt.Printf("wrote %s\n", *counterf)
		if len(rep.Violations) > 0 {
			fatal(fmt.Errorf("counterfactual gate failed with %d violations", len(rep.Violations)))
		}
		ran = true
	}
	if *breakdown != "" {
		for _, ds := range sets {
			out, err := eval.TemplateBreakdown(ds, eval.SystemName(*breakdown), opts)
			if err != nil {
				fatal(err)
			}
			fmt.Print(out)
			fmt.Println()
		}
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// writeGolden regenerates every (dataset, obscurity) golden corpus into
// dir. The files are byte-stable: an unchanged engine rewrites them
// identically, so `git diff` after regeneration IS the semantic drift.
func writeGolden(dir string, sets []*datasets.Dataset, gopts eval.GoldenOptions) error {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return err
	}
	for _, ds := range sets {
		for _, ob := range fragment.Levels() {
			corpus, err := eval.BuildGolden(ds, ob, gopts)
			if err != nil {
				return fmt.Errorf("golden %s/%s: %w", ds.Name, ob, err)
			}
			path := filepath.Join(dir, eval.GoldenFilename(ds.Name, ob))
			if err := os.WriteFile(path, eval.EncodeGolden(corpus), 0o666); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d tasks)\n", path, len(corpus.Tasks))
		}
	}
	return nil
}

func parseObscurity(s string) (fragment.Obscurity, error) {
	for _, ob := range fragment.Levels() {
		if strings.EqualFold(ob.String(), s) {
			return ob, nil
		}
	}
	return 0, fmt.Errorf("unknown obscurity %q (want Full, NoConst or NoConstOp)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "templar-eval:", err)
	os.Exit(1)
}
