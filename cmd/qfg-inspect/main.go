// Command qfg-inspect builds a Query Fragment Graph from a SQL log and
// prints its most frequent fragments and strongest co-occurrences — a
// direct view of the Figure 3 construction in the paper.
//
// Usage:
//
//	qfg-inspect -log queries.sql                 # top fragments
//	qfg-inspect -log queries.sql -top 20
//	qfg-inspect -log queries.sql -fragment 'publication.title' -context SELECT
//	qfg-inspect -dataset mas                     # use a benchmark's gold SQL as the log
//	echo "SELECT j.name FROM journal j" | qfg-inspect
//
// Log lines may carry a "Nx:" repetition prefix as in the paper's Figure 3a.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"templar/internal/datasets"
	"templar/internal/fragment"
	"templar/internal/qfg"
	"templar/internal/sqlparse"
)

func main() {
	var (
		logPath   = flag.String("log", "", "path to a SQL log file ('-' or empty reads stdin)")
		dataset   = flag.String("dataset", "", "use a benchmark's gold SQL as the log (mas, yelp, imdb)")
		obscurity = flag.String("obscurity", "NoConstOp", "obscurity level (Full, NoConst, NoConstOp)")
		top       = flag.Int("top", 15, "number of fragments to list")
		frag      = flag.String("fragment", "", "show co-occurrence neighbors of this fragment expression")
		context   = flag.String("context", "SELECT", "clause context of -fragment (SELECT, FROM, WHERE)")
	)
	flag.Parse()

	ob, err := parseObscurity(*obscurity)
	if err != nil {
		fatal(err)
	}

	var logText string
	switch {
	case *dataset != "":
		var ds *datasets.Dataset
		for _, d := range datasets.All() {
			if strings.EqualFold(d.Name, *dataset) {
				ds = d
			}
		}
		if ds == nil {
			fatal(fmt.Errorf("unknown dataset %q", *dataset))
		}
		var b strings.Builder
		for _, t := range ds.Tasks {
			b.WriteString(t.Gold)
			b.WriteByte('\n')
		}
		logText = b.String()
	case *logPath == "" || *logPath == "-":
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		logText = string(data)
	default:
		data, err := os.ReadFile(*logPath)
		if err != nil {
			fatal(err)
		}
		logText = string(data)
	}

	entries, err := sqlparse.ParseLog(logText)
	if err != nil {
		fatal(err)
	}
	g, err := qfg.Build(entries, ob)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("QFG at %s: %d queries, %d fragments, %d co-occurrence edges\n\n",
		ob, g.Queries(), g.Vertices(), g.Edges())

	if *frag != "" {
		ctx, err := parseContext(*context)
		if err != nil {
			fatal(err)
		}
		f := fragment.Fragment{Context: ctx, Expr: *frag}
		fmt.Printf("nv%v = %d\n", f, g.Occurrences(f))
		fmt.Println("Neighbors by Dice:")
		for i, nb := range g.Neighbors(f) {
			if i >= *top {
				break
			}
			fmt.Printf("  %-50s ne=%-5d Dice=%.3f\n", nb.Fragment, nb.Count, nb.Dice)
		}
		return
	}
	fmt.Println("Most frequent fragments:")
	for _, e := range g.Top(*top) {
		fmt.Printf("  %5dx %s\n", e.Count, e.Fragment)
	}
}

func parseObscurity(s string) (fragment.Obscurity, error) {
	for _, ob := range fragment.Levels() {
		if strings.EqualFold(ob.String(), s) {
			return ob, nil
		}
	}
	return 0, fmt.Errorf("unknown obscurity %q", s)
}

func parseContext(s string) (fragment.Context, error) {
	switch strings.ToUpper(s) {
	case "SELECT":
		return fragment.Select, nil
	case "FROM":
		return fragment.From, nil
	case "WHERE":
		return fragment.Where, nil
	case "GROUP BY", "GROUPBY":
		return fragment.GroupBy, nil
	case "ORDER BY", "ORDERBY":
		return fragment.OrderBy, nil
	default:
		return 0, fmt.Errorf("unknown context %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qfg-inspect:", err)
	os.Exit(1)
}
