// Command qfg-inspect builds, inspects and packs Query Fragment Graphs.
//
// With no subcommand it mines a SQL log and prints the most frequent
// fragments and strongest co-occurrences — a direct view of the Figure 3
// construction in the paper:
//
//	qfg-inspect -log queries.sql                 # top fragments
//	qfg-inspect -log queries.sql -top 20
//	qfg-inspect -log queries.sql -fragment 'publication.title' -context SELECT
//	qfg-inspect -dataset mas                     # use a benchmark's gold SQL as the log
//	echo "SELECT j.name FROM journal j" | qfg-inspect
//
// The pack, unpack and info subcommands work the versioned snapshot store
// codec (internal/store) that templar-serve cold-starts from:
//
//	qfg-inspect pack -dataset mas -o mas.qfg     # mine + compile + pack
//	qfg-inspect pack -log queries.sql -o log.qfg
//	qfg-inspect info mas.qfg                     # header + stats, no dump
//	qfg-inspect unpack mas.qfg                   # dump the fragment table
//	qfg-inspect unpack -top 20 mas.qfg
//
// The wal subcommand verifies and dumps a per-tenant write-ahead log
// segment (internal/wal) offline — the operator's view of what a crashed
// server will recover:
//
//	qfg-inspect wal mas.wal                      # header, record count, tail verdict
//	qfg-inspect wal -dump mas.wal                # every record with its queries
//
// Log lines may carry a "Nx:" repetition prefix as in the paper's Figure 3a.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"templar/internal/datasets"
	"templar/internal/fragment"
	"templar/internal/qfg"
	"templar/internal/sqlparse"
	"templar/internal/store"
	"templar/internal/wal"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "pack":
			runPack(os.Args[2:])
			return
		case "unpack":
			runUnpack(os.Args[2:])
			return
		case "info":
			runInfo(os.Args[2:])
			return
		case "wal":
			runWal(os.Args[2:])
			return
		}
	}
	runInspect(os.Args[1:])
}

func runInspect(args []string) {
	fs := flag.NewFlagSet("qfg-inspect", flag.ExitOnError)
	var (
		logPath   = fs.String("log", "", "path to a SQL log file ('-' or empty reads stdin)")
		dataset   = fs.String("dataset", "", "use a benchmark's gold SQL as the log (mas, yelp, imdb)")
		obscurity = fs.String("obscurity", "NoConstOp", "obscurity level (Full, NoConst, NoConstOp)")
		top       = fs.Int("top", 15, "number of fragments to list")
		frag      = fs.String("fragment", "", "show co-occurrence neighbors of this fragment expression")
		context   = fs.String("context", "SELECT", "clause context of -fragment (SELECT, FROM, WHERE)")
	)
	fs.Parse(args)

	g, _, err := mineGraph(*dataset, *logPath, *obscurity)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("QFG at %s: %d queries, %d fragments, %d co-occurrence edges\n\n",
		g.Obscurity(), g.Queries(), g.Vertices(), g.Edges())

	if *frag != "" {
		ctx, err := parseContext(*context)
		if err != nil {
			fatal(err)
		}
		f := fragment.Fragment{Context: ctx, Expr: *frag}
		fmt.Printf("nv%v = %d\n", f, g.Occurrences(f))
		fmt.Println("Neighbors by Dice:")
		for i, nb := range g.Neighbors(f) {
			if i >= *top {
				break
			}
			fmt.Printf("  %-50s ne=%-5d Dice=%.3f\n", nb.Fragment, nb.Count, nb.Dice)
		}
		return
	}
	fmt.Println("Most frequent fragments:")
	for _, e := range g.Top(*top) {
		fmt.Printf("  %5dx %s\n", e.Count, e.Fragment)
	}
}

// runPack mines a log (or benchmark) and writes a packed snapshot archive.
func runPack(args []string) {
	fs := flag.NewFlagSet("qfg-inspect pack", flag.ExitOnError)
	var (
		logPath   = fs.String("log", "", "path to a SQL log file ('-' or empty reads stdin)")
		dataset   = fs.String("dataset", "", "use a benchmark's gold SQL as the log (mas, yelp, imdb)")
		obscurity = fs.String("obscurity", "NoConstOp", "obscurity level (Full, NoConst, NoConstOp)")
		out       = fs.String("o", "", "output file (default <dataset>.qfg)")
		name      = fs.String("name", "", "dataset name recorded in the archive (default: -dataset, or 'log')")
	)
	fs.Parse(args)

	g, dsName, err := mineGraph(*dataset, *logPath, *obscurity)
	if err != nil {
		fatal(err)
	}
	if *name != "" {
		dsName = *name
	}
	if dsName == "" {
		dsName = "log"
	}
	path := *out
	if path == "" {
		path = store.Filename(dsName)
	}
	snap := g.Snapshot(nil)
	if err := store.WriteFile(path, dsName, snap); err != nil {
		fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("packed %s: %d queries, %d fragments, %d edges at %s → %s (%d bytes)\n",
		dsName, snap.Queries(), snap.Vertices(), snap.Edges(), snap.Obscurity(), path, st.Size())
}

// runInfo prints a packed archive's header and stats without dumping it.
func runInfo(args []string) {
	fs := flag.NewFlagSet("qfg-inspect info", flag.ExitOnError)
	fs.Parse(args)
	path, ar := readArchive(fs)
	st, err := os.Stat(path)
	if err != nil {
		fatal(err)
	}
	snap := ar.Snapshot
	fmt.Printf("%s: packed QFG snapshot (format v%d, %d bytes)\n", path, store.Version, st.Size())
	fmt.Printf("  dataset:   %s\n", ar.Dataset)
	fmt.Printf("  obscurity: %s\n", snap.Obscurity())
	fmt.Printf("  queries:   %d\n", snap.Queries())
	fmt.Printf("  fragments: %d interned (%d in snapshot)\n", snap.Interner().Len(), snap.Vertices())
	fmt.Printf("  edges:     %d\n", snap.Edges())
	fmt.Printf("  wal seq:   %d\n", ar.WalSeq)

	// v3 archives carry a fixed-layout section table: print it so an
	// operator can see exactly which byte ranges are served zero-copy from
	// the mapping. Older varint archives have no sections.
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	secs, err := store.Sections(data)
	if err != nil {
		fatal(err)
	}
	if secs == nil {
		fmt.Printf("  layout:    varint (pre-v3, decoded by copy)\n")
		return
	}
	fmt.Printf("  layout:    fixed v3, %d sections (8-byte aligned, zero-copy mappable)\n", len(secs))
	for _, s := range secs {
		fmt.Printf("    %-10s off=%-8d len=%d\n", s.Name, s.Off, s.Len)
	}
}

// runWal verifies a write-ahead log segment offline and reports exactly
// what a recovering server would keep: the records up to the last valid
// one, plus the typed verdict on any damaged tail.
func runWal(args []string) {
	fs := flag.NewFlagSet("qfg-inspect wal", flag.ExitOnError)
	dump := fs.Bool("dump", false, "dump every record's queries, not just the summary")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("want exactly one .wal file argument, got %d", fs.NArg()))
	}
	path := fs.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	res, err := wal.Scan(data)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	fmt.Printf("%s: write-ahead log segment (format v%d, %d bytes)\n", path, wal.Version, len(data))
	fmt.Printf("  dataset:  %s\n", res.Dataset)
	fmt.Printf("  base seq: %d\n", res.BaseSeq)
	if len(res.Records) == 0 {
		fmt.Printf("  records:  0 (next append is seq %d)\n", res.BaseSeq+1)
	} else {
		fmt.Printf("  records:  %d (seq %d..%d)\n", len(res.Records), res.BaseSeq+1, res.LastSeq())
	}
	switch {
	case res.TailErr == nil:
		fmt.Printf("  tail:     clean\n")
	default:
		fmt.Printf("  tail:     %d byte(s) past offset %d unrecoverable: %v\n",
			len(data)-res.ValidLen, res.ValidLen, res.TailErr)
		fmt.Printf("            recovery keeps the %d record(s) above and truncates the rest\n", len(res.Records))
	}
	if !*dump {
		return
	}
	for _, r := range res.Records {
		kind := "batch"
		if r.Session {
			kind = fmt.Sprintf("session count=%d decay=%g", r.Count, r.Decay)
		}
		fmt.Printf("  seq %d: %s, %d quer%s\n", r.Seq, kind, len(r.Entries), plural(len(r.Entries), "y", "ies"))
		for _, e := range r.Entries {
			if r.Session {
				fmt.Printf("    %s\n", e.SQL)
			} else {
				fmt.Printf("    %dx %s\n", e.Count, e.SQL)
			}
		}
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// runUnpack dumps a packed archive's fragment table in ID order.
func runUnpack(args []string) {
	fs := flag.NewFlagSet("qfg-inspect unpack", flag.ExitOnError)
	top := fs.Int("top", 0, "only dump the N most frequent fragments (0 = all, in ID order)")
	fs.Parse(args)
	path, ar := readArchive(fs)
	snap := ar.Snapshot
	fmt.Printf("%s: dataset=%s %s, %d queries, %d fragments, %d edges\n",
		path, ar.Dataset, snap.Obscurity(), snap.Queries(), snap.Vertices(), snap.Edges())
	frags := snap.Interner().Fragments()
	if *top > 0 {
		// The occurrence counts are already flat in the snapshot: sort IDs
		// by nv instead of rehydrating the whole builder graph.
		ids := make([]int, len(frags))
		for i := range ids {
			ids[i] = i
		}
		sort.Slice(ids, func(i, j int) bool {
			a, b := snap.OccurrencesID(uint32(ids[i])), snap.OccurrencesID(uint32(ids[j]))
			if a != b {
				return a > b
			}
			return ids[i] < ids[j]
		})
		if len(ids) > *top {
			ids = ids[:*top]
		}
		for _, id := range ids {
			fmt.Printf("  %5dx %s\n", snap.OccurrencesID(uint32(id)), frags[id])
		}
		return
	}
	for id, f := range frags {
		fmt.Printf("  %6d  nv=%-5d %s\n", id, snap.OccurrencesID(uint32(id)), f)
	}
}

// readArchive loads the positional archive argument of a subcommand.
func readArchive(fs *flag.FlagSet) (string, *store.Archive) {
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("want exactly one archive file argument, got %d", fs.NArg()))
	}
	path := fs.Arg(0)
	ar, err := store.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	return path, ar
}

// mineGraph builds a QFG from a benchmark's gold SQL or a log file/stdin,
// returning the dataset display name when one was used.
func mineGraph(dataset, logPath, obscurity string) (*qfg.Graph, string, error) {
	ob, err := parseObscurity(obscurity)
	if err != nil {
		return nil, "", err
	}
	var logText, name string
	switch {
	case dataset != "":
		ds, ok := datasets.ByName(dataset)
		if !ok {
			return nil, "", fmt.Errorf("unknown dataset %q", dataset)
		}
		name = ds.Name
		var b strings.Builder
		for _, t := range ds.Tasks {
			b.WriteString(t.Gold)
			b.WriteByte('\n')
		}
		logText = b.String()
	case logPath == "" || logPath == "-":
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, "", err
		}
		logText = string(data)
	default:
		data, err := os.ReadFile(logPath)
		if err != nil {
			return nil, "", err
		}
		logText = string(data)
	}
	entries, err := sqlparse.ParseLog(logText)
	if err != nil {
		return nil, "", err
	}
	g, err := qfg.Build(entries, ob)
	if err != nil {
		return nil, "", err
	}
	return g, name, nil
}

func parseObscurity(s string) (fragment.Obscurity, error) {
	for _, ob := range fragment.Levels() {
		if strings.EqualFold(ob.String(), s) {
			return ob, nil
		}
	}
	return 0, fmt.Errorf("unknown obscurity %q", s)
}

func parseContext(s string) (fragment.Context, error) {
	switch strings.ToUpper(s) {
	case "SELECT":
		return fragment.Select, nil
	case "FROM":
		return fragment.From, nil
	case "WHERE":
		return fragment.Where, nil
	case "GROUP BY", "GROUPBY":
		return fragment.GroupBy, nil
	case "ORDER BY", "ORDERBY":
		return fragment.OrderBy, nil
	default:
		return 0, fmt.Errorf("unknown context %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qfg-inspect:", err)
	os.Exit(1)
}
