// Command benchdiff compares two bench2json documents and fails when the
// new run regresses past a tolerance, so `make alloc-check` can gate the
// serving hot path against a committed baseline (BENCH_*.json).
//
//	benchdiff [-allocs-tolerance 0.25] [-ns-tolerance 1.0] old.json new.json
//
// Only benchmarks present in BOTH documents are compared (the committed
// baseline spans the whole repo; a gating run usually re-measures just the
// hot path). Allocation counts are near-deterministic, so their tolerance
// is tight by default; wall-clock tolerance is loose because baselines
// travel between machines. Exit status 1 on any regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type benchmark struct {
	Package string             `json:"package"`
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

type document struct {
	Benchmarks []benchmark `json:"benchmarks"`
}

func load(path string) (map[string]map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]map[string]float64, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		out[b.Package+"."+b.Name] = b.Metrics
	}
	return out, nil
}

func main() {
	allocsTol := flag.Float64("allocs-tolerance", 0.25, "max fractional allocs/op growth before failing")
	nsTol := flag.Float64("ns-tolerance", 1.0, "max fractional ns/op growth before failing")
	allocsSlack := flag.Float64("allocs-slack", 16, "absolute allocs/op growth always tolerated (keeps tiny-count benchmarks from failing on cold-start amortization)")
	nsSlack := flag.Float64("ns-slack", 2000, "absolute ns/op growth always tolerated (timer granularity on nanosecond-scale benchmarks)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] old.json new.json")
		os.Exit(2)
	}
	old, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	var keys []string
	for k := range cur {
		if _, ok := old[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no overlapping benchmarks between the two documents")
		os.Exit(2)
	}

	check := func(key, metric string, tol, slack float64) (string, bool) {
		was, okOld := old[key][metric]
		now, okNew := cur[key][metric]
		if !okOld || !okNew || was == 0 {
			return "", true
		}
		growth := now/was - 1
		line := fmt.Sprintf("%-60s %-10s %12.1f -> %12.1f  (%+.1f%%, tolerance %+.0f%%)",
			key, metric, was, now, growth*100, tol*100)
		return line, growth <= tol || now-was <= slack
	}

	failed := false
	for _, k := range keys {
		for _, m := range []struct {
			name       string
			tol, slack float64
		}{{"allocs/op", *allocsTol, *allocsSlack}, {"ns/op", *nsTol, *nsSlack}} {
			line, ok := check(k, m.name, m.tol, m.slack)
			if line == "" {
				continue
			}
			if !ok {
				failed = true
				fmt.Printf("REGRESSION %s\n", line)
			} else {
				fmt.Printf("ok         %s\n", line)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
