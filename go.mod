module templar

go 1.22
