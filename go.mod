module templar

go 1.21
