# Mirrors the CI steps (.github/workflows/ci.yml) so local runs and CI
# agree on what "green" means.

GO ?= go

.PHONY: all build test race bench bench-json fuzz fmt vet docs-check api-check serve

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-json records a machine-readable benchmark trajectory point:
# raw output in bench.txt, JSON (via cmd/bench2json) in BENCH_latest.json.
# Two steps (no pipeline) so a failing benchmark fails the target.
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./... > bench.txt
	$(GO) run ./cmd/bench2json < bench.txt > BENCH_latest.json
	@echo "wrote bench.txt and BENCH_latest.json"

fuzz:
	$(GO) test ./internal/sqlparse -fuzz 'FuzzParse$$' -fuzztime 30s
	$(GO) test ./internal/sqlparse -fuzz 'FuzzParseLog$$' -fuzztime 30s

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# docs-check guards the documentation layer: gofmt drift anywhere
# (including examples/), go vet, and no broken relative links in the
# repo's Markdown (cmd/docs-check).
docs-check: fmt vet
	$(GO) run ./cmd/docs-check

# api-check guards the public API contract: every pkg/api wire type
# round-trips through its JSON tags (reflection test), and
# docs/openapi.yaml stays in sync with the server's registered v2 routes.
api-check:
	$(GO) test ./pkg/api -run 'TestWireContract|TestErrorHelpers' -count=1
	$(GO) test ./internal/serve -run 'TestOpenAPISync|TestRoutesTable' -count=1

serve: build
	$(GO) run ./cmd/templar-serve -datasets mas,yelp,imdb -store ./snapshots -addr :8080
