# Mirrors the CI steps (.github/workflows/ci.yml) so local runs and CI
# agree on what "green" means.

GO ?= go

.PHONY: all build test race bench bench-json alloc-check fuzz fmt vet docs-check api-check wal-check repl-check serve soak golden golden-check counterfactual-check load-smoke overload-smoke

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-json records a machine-readable benchmark trajectory point:
# raw output in bench.txt, JSON (via cmd/bench2json) in BENCH_latest.json.
# Two steps (no pipeline) so a failing benchmark fails the target.
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./... > bench.txt
	$(GO) run ./cmd/bench2json < bench.txt > BENCH_latest.json
	@echo "wrote bench.txt and BENCH_latest.json"

# alloc-check gates the serving hot path against the committed baseline:
# the AllocsPerRun ceilings (alloc_test.go), then a steady-state re-measure
# of the end-to-end benchmarks diffed by cmd/benchdiff. Allocation growth
# past 25% fails; wall-clock gets a loose 100% band since baselines travel
# between machines.
ALLOC_BASELINE ?= BENCH_2026-08-07.json
alloc-check:
	$(GO) test . -run 'AllocCeiling' -count=1 -v
	$(GO) test . ./internal/serve ./internal/joinpath -run '^$$' \
		-bench 'MapKeywordsIndexed|TranslateSnapshotQFG|TranslateEndToEnd|BenchmarkInfer' \
		-benchtime 100x -benchmem > bench_alloc.txt
	$(GO) run ./cmd/bench2json < bench_alloc.txt > BENCH_alloc.json
	$(GO) run ./cmd/benchdiff $(ALLOC_BASELINE) BENCH_alloc.json

fuzz:
	$(GO) test ./internal/sqlparse -fuzz 'FuzzParse$$' -fuzztime 30s
	$(GO) test ./internal/sqlparse -fuzz 'FuzzParseLog$$' -fuzztime 30s

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# docs-check guards the documentation layer: gofmt drift anywhere
# (including examples/), go vet, and no broken relative links in the
# repo's Markdown (cmd/docs-check).
docs-check: fmt vet
	$(GO) run ./cmd/docs-check

# api-check guards the public API contract: every pkg/api wire type
# round-trips through its JSON tags (reflection test), and
# docs/openapi.yaml stays in sync with the server's registered v2 routes.
api-check:
	$(GO) test ./pkg/api -run 'TestWireContract|TestErrorHelpers' -count=1
	$(GO) test ./internal/serve -run 'TestOpenAPISync|TestRoutesTable' -count=1

# wal-check guards the durability layer: the WAL package's
# crash-injection suite (every-prefix truncation, bit flips at every
# offset, compaction crash windows) plus the serve-layer durability tests
# (WAL-first acks, boot recovery, reconciliation refusals, compaction
# under a served tenant). The whole-stack kill-and-recover phase rides in
# `make soak`.
wal-check:
	$(GO) test -race ./internal/wal -count=1
	$(GO) test -race ./internal/serve -run 'TestDurable|TestAttachWAL|TestCompact|TestWALStats' -count=1
	$(GO) test ./internal/store -run 'TestWalSeq|TestDecodeV1Compat' -count=1
	$(GO) test ./internal/qfg -run 'TestReplay' -count=1

# repl-check guards the replication layer: the WAL stream codec and tail
# reader, follower bootstrap/tail/re-bootstrap with fault injection
# (unreachable primary, compacted-away gap, bit-flipped wire), the serve
# endpoints and redirect-to-primary behavior, and consistent-hash gateway
# routing (eject/readmit stability, staleness bound, write-to-primary,
# gateway-vs-direct parity). The replica-convergence soak phase rides in
# `make soak`.
repl-check:
	$(GO) test -race ./internal/repl ./internal/gateway -count=1
	$(GO) test -race ./internal/wal -run 'TestTailSince|TestRecordReader' -count=1
	$(GO) test -race ./internal/workload -run 'TestRunnerClassifiesRedirectedAppends' -count=1

serve: build
	$(GO) run ./cmd/templar-serve -datasets mas,yelp,imdb -store ./snapshots -addr :8080

# soak runs the race-enabled concurrency invariant suite: live log
# appends interleaved with query traffic across tenants, monotonic
# snapshot stats, tenant isolation, store-reload parity. Duration per
# phase comes from TEMPLAR_SOAK_MS (default ~1.2s per test; CI's
# workflow_dispatch passes a longer budget for scheduled soaks).
soak:
	$(GO) test -race ./internal/workload -run 'TestSoak' -count=1 -v

# golden regenerates the committed end-to-end golden corpora. Only commit
# the diff when the semantic change is intended — see docs/TESTING.md.
golden:
	$(GO) run ./cmd/templar-eval -golden internal/eval/testdata/golden

# golden-check replays the committed corpora through the full engine and
# fails on any semantic drift (byte-for-byte).
golden-check:
	$(GO) test ./internal/eval -run 'TestGolden' -count=1

# counterfactual-check guards the learning loop: the seeded feedback
# replay must strictly improve obscured golden hit-rates on every
# dataset while Full-visibility pinned answers never regress and the
# committed Full corpora stay byte-identical (see docs/LEARNING.md).
# The deterministic counterfactual.json report is uploaded as a CI
# artifact.
counterfactual-check:
	$(GO) test ./internal/eval -run 'TestCounterfactual' -count=1
	$(GO) run ./cmd/templar-eval -counterfactual counterfactual.json

# load-smoke runs a short deterministic load against an in-process
# server and writes the bench2json-compatible latency report.
load-smoke: build
	$(GO) run ./cmd/templar-load -self -datasets mas,yelp -requests 400 -workers 8 -seed 1 -o load.json

# overload-smoke drives an open-loop burst (fixed arrival rate, not
# bounded by worker completion) into an admission-bounded in-process
# server and asserts the designed overload outcome: requests are shed
# with 429 (-expect-shed requires shed > 0) and the server never answers
# 5xx. Retries are disabled so every shed is observed, not ridden out.
overload-smoke: build
	$(GO) run ./cmd/templar-load -self -datasets mas -requests 400 -workers 32 -seed 1 \
		-rate 4000 -max-inflight 4 -retries 0 -expect-shed -o overload.json
