# Mirrors the CI steps (.github/workflows/ci.yml) so local runs and CI
# agree on what "green" means.

GO ?= go

.PHONY: all build test race bench fmt vet serve

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

serve: build
	$(GO) run ./cmd/templar-serve -dataset mas -addr :8080
