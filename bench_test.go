// Package templar hosts the repository-level benchmark harness: one
// testing.B benchmark per table and figure in the paper's evaluation
// (§VII). Each bench regenerates its artifact and prints it once, so
// `go test -bench=. -benchmem` leaves a full reproduction transcript in
// its output (see EXPERIMENTS.md for paper-vs-measured commentary).
package templar

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/eval"
	"templar/internal/fragment"
	"templar/internal/keyword"
	"templar/internal/qfg"
	"templar/internal/sqlparse"
	templarpkg "templar/internal/templar"
)

var defaultOpts = eval.Options{K: 5, Lambda: 0.8, Obscurity: fragment.NoConstOp}

// printOnce guards are per-artifact so each table/figure prints exactly one
// copy regardless of b.N.
var (
	onceTableII  sync.Once
	onceTableIII sync.Once
	onceTableIV  sync.Once
	onceFig5     sync.Once
	onceFig6     sync.Once
	onceObsc     sync.Once
	onceDesign   sync.Once
	onceSession  sync.Once
)

// BenchmarkTableII regenerates the dataset statistics table (§VII-A4).
func BenchmarkTableII(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := eval.TableII(datasets.All())
		onceTableII.Do(func() { fmt.Print("\n", out, "\n") })
	}
}

// BenchmarkTableIII regenerates the four-system KW/FQ accuracy comparison
// (NaLIR, NaLIR+, Pipeline, Pipeline+ at NoConstOp, κ=5, λ=0.8).
func BenchmarkTableIII(b *testing.B) {
	all := datasets.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := eval.TableIII(all, defaultOpts)
		if err != nil {
			b.Fatal(err)
		}
		onceTableIII.Do(func() { fmt.Print("\n", out, "\n") })
	}
}

// BenchmarkTableIV regenerates the LogJoin ablation on Pipeline+.
func BenchmarkTableIV(b *testing.B) {
	all := datasets.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := eval.TableIV(all, defaultOpts)
		if err != nil {
			b.Fatal(err)
		}
		onceTableIV.Do(func() { fmt.Print("\n", out, "\n") })
	}
}

// BenchmarkFigure5 regenerates the κ sweep (accuracy of Pipeline+ per
// benchmark for κ in 1..10, λ fixed at 0.8).
func BenchmarkFigure5(b *testing.B) {
	all := datasets.All()
	order := []string{"MAS", "Yelp", "IMDB"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, err := eval.Figure5(all, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, defaultOpts)
		if err != nil {
			b.Fatal(err)
		}
		onceFig5.Do(func() {
			fmt.Print("\n", eval.RenderSweep("Figure 5: Pipeline+ FQ accuracy vs kappa (lambda=0.8)", "kappa", series, order), "\n")
		})
	}
}

// BenchmarkFigure6 regenerates the λ sweep (accuracy of Pipeline+ per
// benchmark for λ in 0..1, κ fixed at 5).
func BenchmarkFigure6(b *testing.B) {
	all := datasets.All()
	order := []string{"MAS", "Yelp", "IMDB"}
	lambdas := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, err := eval.Figure6(all, lambdas, defaultOpts)
		if err != nil {
			b.Fatal(err)
		}
		onceFig6.Do(func() {
			fmt.Print("\n", eval.RenderSweep("Figure 6: Pipeline+ FQ accuracy vs lambda (kappa=5)", "lambda", series, order), "\n")
		})
	}
}

// BenchmarkObscurityAblation regenerates the Full/NoConst/NoConstOp
// comparison behind §VII-B's claim that all obscurity levels improve on the
// baseline, with NoConstOp best.
func BenchmarkObscurityAblation(b *testing.B) {
	all := datasets.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := eval.ObscurityAblation(all, defaultOpts)
		if err != nil {
			b.Fatal(err)
		}
		onceObsc.Do(func() { fmt.Print("\n", out, "\n") })
	}
}

// BenchmarkDesignAblation regenerates the scoring/weighting design
// ablation (geometric vs arithmetic mean, FROM inclusion, Dice vs raw-count
// join weights) called out in DESIGN.md §6.
func BenchmarkDesignAblation(b *testing.B) {
	all := datasets.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := eval.DesignAblation(all, defaultOpts)
		if err != nil {
			b.Fatal(err)
		}
		onceDesign.Do(func() { fmt.Print("\n", out, "\n") })
	}
}

// BenchmarkSessionExperiment regenerates the session-aware QFG experiment
// (the paper's §VIII future work, implemented via qfg.AddSession).
func BenchmarkSessionExperiment(b *testing.B) {
	all := datasets.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := eval.SessionExperiment(all, []float64{0, 0.5}, defaultOpts)
		if err != nil {
			b.Fatal(err)
		}
		onceSession.Do(func() { fmt.Print("\n", out, "\n") })
	}
}

// BenchmarkEvaluateSingleDataset measures the cost of one cross-validated
// four-system evaluation (the unit of work behind every table cell).
func BenchmarkEvaluateSingleDataset(b *testing.B) {
	ds := datasets.Yelp()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Evaluate(ds, eval.AllSystems(), defaultOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkMapKeywords measures per-call MAPKEYWORDS cost on the serving
// hot path: the benchmark workload's keyword sets requested over and over,
// as a production NLIDB front-end would. The indexed variant answers from
// the mapper's precomputed candidate index and bounded similarity cache;
// the seed variant re-scans the database and re-derives every embedding
// similarity per call.
func benchmarkMapKeywords(b *testing.B, disableIndex bool) {
	ds := datasets.MAS()
	entries := make([]sqlparse.LogEntry, 0, len(ds.Tasks))
	for _, task := range ds.Tasks {
		q, err := sqlparse.Parse(task.Gold)
		if err != nil {
			b.Fatal(err)
		}
		entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
	}
	graph, err := qfg.Build(entries, fragment.NoConstOp)
	if err != nil {
		b.Fatal(err)
	}
	mapper := keyword.NewMapper(ds.DB, embedding.New(), graph,
		keyword.Options{K: 5, Lambda: 0.8, DisableIndex: disableIndex})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapper.MapKeywords(ds.Tasks[i%len(ds.Tasks)].Keywords); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapKeywordsIndexed is the serving-layer configuration.
func BenchmarkMapKeywordsIndexed(b *testing.B) { benchmarkMapKeywords(b, false) }

// BenchmarkMapKeywordsSeedScan is the seed per-call scan path, kept as the
// baseline the indexed mapper must beat on repeated keywords.
func BenchmarkMapKeywordsSeedScan(b *testing.B) { benchmarkMapKeywords(b, true) }

// benchmarkTranslate measures the full in-process NLQ→SQL pipeline per
// call (MAPKEYWORDS → INFERJOINS → SQL construction → ranking), tracking
// allocations, under each QFG scoring path.
func benchmarkTranslate(b *testing.B, disableSnapshot bool) {
	ds := datasets.MAS()
	entries := make([]sqlparse.LogEntry, 0, len(ds.Tasks))
	for _, task := range ds.Tasks {
		q, err := sqlparse.Parse(task.Gold)
		if err != nil {
			b.Fatal(err)
		}
		entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
	}
	graph, err := qfg.Build(entries, fragment.NoConstOp)
	if err != nil {
		b.Fatal(err)
	}
	sys := templarpkg.New(ds.DB, embedding.New(), graph, templarpkg.Options{
		Keyword: keyword.Options{K: 5, Lambda: 0.8, DisableSnapshot: disableSnapshot},
		LogJoin: true,
	})
	specs := []string{
		"papers:select;Databases:where",
		"authors:select;Data Mining:where",
	}
	kws := make([][]keyword.Keyword, len(specs))
	for i, s := range specs {
		k, err := keyword.ParseSpec(s)
		if err != nil {
			b.Fatal(err)
		}
		kws[i] = k
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Translate(context.Background(), kws[i%len(kws)], nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranslateSnapshotQFG is the serving configuration: ranking
// against the compiled interned-fragment snapshot.
func BenchmarkTranslateSnapshotQFG(b *testing.B) { benchmarkTranslate(b, false) }

// BenchmarkTranslateMapQFG ranks through the map-backed QFG (the seed
// scoring path), kept as the baseline the snapshot must beat.
func BenchmarkTranslateMapQFG(b *testing.B) { benchmarkTranslate(b, true) }
