// Quickstart: build a Query Fragment Graph from a SQL log, augment keyword
// mapping and join path inference with it, and translate one natural
// language query — the smallest end-to-end use of the Templar API.
package main

import (
	"fmt"
	"log"

	"templar/internal/db"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/keyword"
	"templar/internal/nlidb"
	"templar/internal/qfg"
	"templar/internal/schema"
	"templar/internal/sqlparse"
)

func main() {
	// 1. Declare a schema: journals publish publications.
	g := schema.NewGraph()
	must(g.AddRelation(schema.Relation{Name: "journal", Attributes: []schema.Attribute{
		{Name: "jid", Type: schema.Number, PrimaryKey: true},
		{Name: "name", Type: schema.Text},
	}}))
	must(g.AddRelation(schema.Relation{Name: "publication", Attributes: []schema.Attribute{
		{Name: "pid", Type: schema.Number, PrimaryKey: true},
		{Name: "title", Type: schema.Text},
		{Name: "year", Type: schema.Number},
		{Name: "jid", Type: schema.Number},
	}}))
	must(g.AddForeignKey(schema.ForeignKey{FromRel: "publication", FromAttr: "jid", ToRel: "journal", ToAttr: "jid"}))

	// 2. Load some rows.
	d := db.New(g)
	d.MustInsert("journal", []db.Value{db.Num(1), db.Str("TKDE")})
	d.MustInsert("journal", []db.Value{db.Num(2), db.Str("TMC")})
	d.MustInsert("publication", []db.Value{db.Num(10), db.Str("Adaptive Query Planning"), db.Num(2004), db.Num(1)})
	d.MustInsert("publication", []db.Value{db.Num(11), db.Str("Mobile Handoff Studies"), db.Num(1999), db.Num(2)})
	d.MustInsert("publication", []db.Value{db.Num(12), db.Str("Streaming Join Processing"), db.Num(2010), db.Num(1)})

	// 3. Mine the SQL query log into a Query Fragment Graph (Figure 3).
	logText := `
25x: SELECT j.name FROM journal j
8x: SELECT p.title FROM publication p WHERE p.year > 2003
3x: SELECT p.title FROM journal j, publication p WHERE j.name = 'TMC' AND p.jid = j.jid
`
	entries, err := sqlparse.ParseLog(logText)
	must(err)
	graph, err := qfg.Build(entries, fragment.NoConstOp)
	must(err)
	fmt.Printf("QFG: %d fragments over %d logged queries\n", graph.Vertices(), graph.Queries())

	// 4. Assemble a Templar-augmented pipeline NLIDB and translate the NLQ
	// "Return the papers after 2000" (the paper's Example 4). The NLIDB
	// front-end has already parsed it into keywords with metadata.
	sys := nlidb.NewPipelinePlus(d, embedding.New(), graph, true, keyword.Options{Obscurity: fragment.NoConstOp})
	kws := []keyword.Keyword{
		{Text: "papers", Meta: keyword.Metadata{Context: fragment.Select}},
		{Text: "after 2000", Meta: keyword.Metadata{Context: fragment.Where, Op: ">"}},
	}
	tr, err := sys.Translate("Return the papers after 2000", false, kws)
	must(err)
	fmt.Printf("SQL: %s\n", tr.Rendered)

	// 5. Execute the translated SQL against the database.
	q, err := sqlparse.Parse(tr.Rendered)
	must(err)
	res, err := d.Execute(q)
	must(err)
	fmt.Print(res)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
