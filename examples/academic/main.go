// Academic: the paper's running example on the full MAS benchmark. It
// replays Examples 1–3: the baseline Pipeline system maps "papers" to
// journal and takes a short-but-wrong join path; the Templar-augmented
// Pipeline+ uses the SQL query log to map "papers" to publication.title and
// to route the join through the keyword junctions.
package main

import (
	"fmt"
	"log"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/keyword"
	"templar/internal/nlidb"
	"templar/internal/qfg"
	"templar/internal/sqlparse"
)

func main() {
	ds := datasets.MAS()
	fmt.Printf("MAS benchmark: %d relations, %d tasks\n\n", ds.DB.Schema().Stats().Relations, len(ds.Tasks))

	// Build the QFG from every benchmark gold query except the one we are
	// about to translate (leave-one-out, mirroring the evaluation).
	const taskID = "mas/papersInDomain/00"
	var task datasets.Task
	var entries []sqlparse.LogEntry
	for _, t := range ds.Tasks {
		if t.ID == taskID {
			task = t
			continue
		}
		q, err := sqlparse.Parse(t.Gold)
		must(err)
		entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
	}
	graph, err := qfg.Build(entries, fragment.NoConstOp)
	must(err)

	fmt.Printf("NLQ: %s\n\n", task.NLQ)
	model := embedding.New()
	opts := keyword.Options{Obscurity: fragment.NoConstOp}

	// Example 1: the vanilla pipeline picks journal and a short join path.
	base := nlidb.NewPipeline(ds.DB, model, opts)
	trBase, err := base.Translate(task.NLQ, task.Hazard, task.Keywords)
	must(err)
	fmt.Println("Pipeline (Example 1 — the mistake):")
	fmt.Printf("  top mapping: %s\n", trBase.Config.Mappings[0])
	fmt.Printf("  join path:   %s\n", trBase.Path)
	fmt.Printf("  SQL:         %s\n\n", trBase.Rendered)

	// Example 3: Templar's log evidence corrects both decisions.
	plus := nlidb.NewPipelinePlus(ds.DB, model, graph, true, opts)
	trPlus, err := plus.Translate(task.NLQ, task.Hazard, task.Keywords)
	must(err)
	fmt.Println("Pipeline+ (Example 3 — the fix):")
	fmt.Printf("  top mapping: %s\n", trPlus.Config.Mappings[0])
	fmt.Printf("  join path:   %s\n", trPlus.Path)
	fmt.Printf("  SQL:         %s\n\n", trPlus.Rendered)

	fmt.Printf("Gold:          %s\n", task.Gold)
	fmt.Printf("Pipeline  matches gold: %v\n", trBase.SQL == task.GoldCanonical && !trBase.Tie)
	fmt.Printf("Pipeline+ matches gold: %v\n\n", trPlus.SQL == task.GoldCanonical && !trPlus.Tie)

	// Show the log evidence behind the flip: Dice co-occurrence of each
	// candidate SELECT fragment with the domain-name predicate.
	pred := fragment.Fragment{Context: fragment.Where, Expr: "domain.name ?op ?val"}
	for _, cand := range []fragment.Fragment{
		fragment.Attr("publication.title", ""),
		fragment.Attr("journal.name", ""),
	} {
		fmt.Printf("Dice(%v, %v) = %.3f\n", cand, pred, graph.Dice(cand, pred))
	}

	// Execute the corrected SQL on the populated database.
	q, err := sqlparse.Parse(trPlus.Rendered)
	must(err)
	res, err := ds.DB.Execute(q)
	must(err)
	fmt.Printf("\nExecuting the Pipeline+ SQL returns %d rows.\n", len(res.Rows))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
