// Selfjoin: the paper's Example 7. "Find papers written by both X and Y"
// maps two keywords onto the same attribute (author.name), so the relation
// bag contains author twice. Join path inference forks the schema graph
// (Algorithm 4, Figure 4), cloning author AND the writes junction while
// sharing publication, and SQL construction emits two aliased instances of
// each.
package main

import (
	"fmt"
	"log"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/joinpath"
	"templar/internal/keyword"
	"templar/internal/nlidb"
	"templar/internal/sqlparse"
)

func main() {
	ds := datasets.MAS()
	var task datasets.Task
	for _, t := range ds.Tasks {
		if t.Template == "papersByTwoAuthors" {
			task = t
			break
		}
	}
	fmt.Printf("NLQ: %s\n\n", task.NLQ)

	// The forked join path, directly from INFERJOINS.
	gen := joinpath.NewGenerator(ds.DB.Schema(), nil)
	paths, err := gen.Infer([]string{"author", "author", "publication"}, 1)
	must(err)
	p := paths[0]
	fmt.Println("Forked join path (Figure 4b):")
	fmt.Printf("  instances: %v\n", p.Relations)
	for _, e := range p.Edges {
		fmt.Printf("  join: %s\n", e)
	}

	// End-to-end translation; even the log-free baseline handles the
	// fork — self-joins are a structural capability, not a log feature.
	sys := nlidb.NewPipeline(ds.DB, embedding.New(), keyword.Options{})
	tr, err := sys.Translate(task.NLQ, false, task.Keywords)
	must(err)
	fmt.Printf("\nSQL: %s\n", tr.Rendered)

	q, err := sqlparse.Parse(tr.Rendered)
	must(err)
	res, err := ds.DB.Execute(q)
	must(err)
	fmt.Printf("Execution returns %d rows (papers co-authored by both).\n", len(res.Rows))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
