// Multitenant: pack two datasets' Query Fragment Graphs into a snapshot
// store, cold-start a multi-tenant server from the packed files (no SQL-log
// re-mining), and query both datasets over one HTTP listener — the
// serve-many-schemas-from-one-fleet shape of the serving layer.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/qfg"
	"templar/internal/serve"
	"templar/internal/sqlparse"
	"templar/internal/store"
	"templar/internal/templar"
	"templar/pkg/api"
)

func main() {
	// 1. Pack: mine each dataset's gold-SQL log once and persist the
	// compiled snapshot — the build-time step a deployment pipeline runs.
	dir, err := os.MkdirTemp("", "templar-store-*")
	must(err)
	defer os.RemoveAll(dir)
	for _, ds := range []*datasets.Dataset{datasets.MAS(), datasets.Yelp()} {
		entries := make([]sqlparse.LogEntry, 0, len(ds.Tasks))
		for _, t := range ds.Tasks {
			q, err := sqlparse.Parse(t.Gold)
			must(err)
			entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
		}
		graph, err := qfg.Build(entries, fragment.NoConstOp)
		must(err)
		path := filepath.Join(dir, store.Filename(ds.Name))
		must(store.WriteFile(path, ds.Name, graph.Snapshot(nil)))
		fmt.Printf("packed %s → %s\n", ds.Name, filepath.Base(path))
	}

	// 2. Serve from the store: each engine cold-starts from one file read.
	// NewLiveFromSnapshot rehydrates a builder graph behind the loaded
	// snapshot, so live log appends keep working after a store boot.
	reg := serve.NewRegistry()
	for _, ds := range []*datasets.Dataset{datasets.MAS(), datasets.Yelp()} {
		start := time.Now()
		ar, err := store.ReadFile(filepath.Join(dir, store.Filename(ds.Name)))
		must(err)
		sys := templar.NewLive(ds.DB, embedding.New(), qfg.NewLiveFromSnapshot(ar.Snapshot), templar.Options{LogJoin: true})
		must(reg.Add(&serve.Tenant{Name: ar.Dataset, Sys: sys, Source: "store", LoadTime: time.Since(start)}))
		fmt.Printf("loaded %s from store in %s (%d logged queries)\n",
			ar.Dataset, time.Since(start).Round(time.Microsecond), ar.Snapshot.Queries())
	}
	srv := httptest.NewServer(serve.NewRegistryServer(reg, "MAS", 4, nil).Handler())
	defer srv.Close()

	// 3. Query both datasets through their scoped routes.
	translate(srv.URL+"/v2/mas/translate", `{"queries":[{"spec":"papers:select;Databases:where"}]}`)
	translate(srv.URL+"/v2/yelp/translate", `{"queries":[{"keywords":[
		{"text":"businesses","context":"select"},
		{"text":"Scottsdale","context":"where"}]}]}`)

	// 4. The admin view shows both engines side by side.
	resp, err := http.Get(srv.URL + "/admin/datasets")
	must(err)
	defer resp.Body.Close()
	var admin api.DatasetsResponse
	must(json.NewDecoder(resp.Body).Decode(&admin))
	for _, d := range admin.Datasets {
		fmt.Printf("admin: %-4s source=%s queries=%d fragments=%d default=%v\n",
			d.Name, d.Source, d.LogQueries, d.LogFragments, d.Default)
	}
}

// translate posts one batch and prints the top SQL per query.
func translate(url, body string) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	must(err)
	defer resp.Body.Close()
	var tr api.TranslateResponse
	must(json.NewDecoder(resp.Body).Decode(&tr))
	for _, r := range tr.Results {
		if r.Error != nil {
			fmt.Printf("%s → error: %s\n", url, r.Error)
			continue
		}
		fmt.Printf("%s →\n  %s\n", url, r.Rendered)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
