// Yelp: equal-length join path ties. The user relation reaches business
// through review or through tip — two-edge paths either way — so uniform
// weights tie and the baseline returns an ambiguous result. Log-driven
// weights (Table IV's LogJoin) break the tie toward the path users actually
// query.
package main

import (
	"fmt"
	"log"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/joinpath"
	"templar/internal/keyword"
	"templar/internal/nlidb"
	"templar/internal/qfg"
	"templar/internal/sqlparse"
)

func main() {
	ds := datasets.Yelp()
	const taskID = "yelp/usersWhoReviewedBusiness/00"
	var task datasets.Task
	var entries []sqlparse.LogEntry
	for _, t := range ds.Tasks {
		if t.ID == taskID {
			task = t
			continue
		}
		q, err := sqlparse.Parse(t.Gold)
		must(err)
		entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
	}
	graph, err := qfg.Build(entries, fragment.NoConstOp)
	must(err)

	fmt.Printf("NLQ: %s\n\n", task.NLQ)

	// Raw join inference for the bag {user, business}: uniform weights
	// produce two tied shortest paths.
	uniform := joinpath.NewGenerator(ds.DB.Schema(), nil)
	paths, err := uniform.Infer([]string{"user", "business"}, 3)
	must(err)
	fmt.Println("Uniform weights (baseline):")
	for _, p := range paths {
		fmt.Printf("  %-28s weight=%.3f\n", p, p.TotalWeight)
	}

	logw := joinpath.NewGenerator(ds.DB.Schema(), joinpath.LogWeights(graph))
	paths, err = logw.Infer([]string{"user", "business"}, 3)
	must(err)
	fmt.Println("Log-driven weights (Templar):")
	for _, p := range paths {
		fmt.Printf("  %-28s weight=%.3f\n", p, p.TotalWeight)
	}
	fmt.Printf("Dice(user, review) relations: %.3f; Dice(user, tip): %.3f\n\n",
		graph.DiceRelations("user", "review"), graph.DiceRelations("user", "tip"))

	// End to end: the baseline ties, Pipeline+ resolves.
	model := embedding.New()
	opts := keyword.Options{Obscurity: fragment.NoConstOp}
	base := nlidb.NewPipeline(ds.DB, model, opts)
	trBase, err := base.Translate(task.NLQ, task.Hazard, task.Keywords)
	must(err)
	fmt.Printf("Pipeline:  %s\n  tie for first place: %v\n", trBase.Rendered, trBase.Tie)

	plus := nlidb.NewPipelinePlus(ds.DB, model, graph, true, opts)
	trPlus, err := plus.Translate(task.NLQ, task.Hazard, task.Keywords)
	must(err)
	fmt.Printf("Pipeline+: %s\n  tie for first place: %v\n", trPlus.Rendered, trPlus.Tie)
	fmt.Printf("Pipeline+ matches gold: %v\n", trPlus.SQL == task.GoldCanonical && !trPlus.Tie)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
