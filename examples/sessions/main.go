// Sessions: the paper's §VIII future work, implemented. Queries issued in
// one user session serve a single information need, so fragments from
// different queries of the session carry (decayed) co-occurrence evidence.
// This example shows session evidence teaching the QFG a keyword mapping
// that within-query co-occurrence alone cannot: the session pairs journal
// names with publication titles even though no single query contains both.
package main

import (
	"fmt"
	"log"

	"templar/internal/fragment"
	"templar/internal/qfg"
	"templar/internal/sqlparse"
)

func main() {
	// A user session: the user first looks up a journal, then drills into
	// its publications — two queries, one intent.
	session := []string{
		"SELECT j.name FROM journal j WHERE j.name = 'TKDE'",
		"SELECT p.title FROM publication p, journal j WHERE j.name = 'TKDE' AND p.jid = j.jid",
	}
	queries := make([]*sqlparse.Query, len(session))
	for i, src := range session {
		q, err := sqlparse.Parse(src)
		must(err)
		must(q.Resolve(nil))
		queries[i] = q
	}

	jname := fragment.Attr("journal.name", "")
	title := fragment.Attr("publication.title", "")

	// Without sessions: each query folded independently.
	plain := qfg.New(fragment.NoConstOp)
	for _, q := range queries {
		plain.AddQuery(q, 1)
	}
	fmt.Println("Definition 6 graph (queries folded independently):")
	fmt.Printf("  ne(j.name SELECT, p.title SELECT) = %d\n", plain.CoOccurrences(jname, title))
	fmt.Printf("  Dice = %.3f\n\n", plain.Dice(jname, title))

	// With sessions: the same two queries folded as one session.
	sess := qfg.New(fragment.NoConstOp)
	must(sess.AddSession(queries, 1, 0.5))
	fmt.Println("Session-aware graph (decay 0.5):")
	fmt.Printf("  within-query ne            = %d\n", sess.CoOccurrences(jname, title))
	fmt.Printf("  cross-query session weight = %.3f\n", sess.SessionCoOccurrence(jname, title))
	fmt.Printf("  blended Dice               = %.3f\n\n", sess.Dice(jname, title))

	fmt.Println("The session taught the graph that journal names and paper titles")
	fmt.Println("belong to one information need — evidence no single query carries.")
	fmt.Println("See EXPERIMENTS.md for the end-to-end effect (helps keyword mapping,")
	fmt.Println("dilutes join-path discrimination).")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
