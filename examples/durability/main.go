// Durability: serve a dataset with a write-ahead log, acknowledge live
// appends, then "kill -9" the server — no shutdown, no final sync — and
// boot a fresh engine from what is left on disk. The walkthrough proves
// the WAL's contract end to end: every acknowledged append survives the
// crash, and the recovered engine answers byte-identically to the one
// that died. See docs/DURABILITY.md for the wire format and the operator
// runbook.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/qfg"
	"templar/internal/serve"
	"templar/internal/sqlparse"
	"templar/internal/store"
	"templar/internal/templar"
	"templar/internal/wal"
	"templar/pkg/api"
)

func main() {
	ds := datasets.MAS()
	storeDir, err := os.MkdirTemp("", "templar-store-*")
	must(err)
	defer os.RemoveAll(storeDir)
	walDir, err := os.MkdirTemp("", "templar-wal-*")
	must(err)
	defer os.RemoveAll(walDir)

	// 1. Pack the mined snapshot once — the durable baseline the WAL
	// extends. (templar-serve does this automatically on first boot.)
	entries := make([]sqlparse.LogEntry, 0, len(ds.Tasks))
	for _, t := range ds.Tasks {
		q, err := sqlparse.Parse(t.Gold)
		must(err)
		entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
	}
	graph, err := qfg.Build(entries, fragment.NoConstOp)
	must(err)
	must(store.WriteFile(filepath.Join(storeDir, store.Filename(ds.Name)), ds.Name, graph.Snapshot(nil)))

	// 2. Boot a durable server: engine from the snapshot, WAL attached.
	srv1, tn1 := boot(ds, storeDir, walDir)

	// 3. Acknowledged appends. Each ack carries wal_seq — the durability
	// receipt: the record was fsynced before the response was written.
	for _, body := range []string{
		`{"queries":[{"sql":"SELECT j.name FROM journal j","count":3}]}`,
		`{"session":true,"decay":0.7,"queries":[
			{"sql":"SELECT a.name FROM author a"},
			{"sql":"SELECT p.title FROM publication p"}]}`,
	} {
		resp, err := http.Post(srv1.URL+"/v2/mas/log", "application/json", bytes.NewReader([]byte(body)))
		must(err)
		var ack api.LogAppendResponse
		must(json.NewDecoder(resp.Body).Decode(&ack))
		resp.Body.Close()
		fmt.Printf("append acked: wal_seq=%d log now %d queries\n", ack.WALSeq, ack.LogQueries)
	}
	probe := `{"queries":[{"spec":"papers:select;Databases:where"}]}`
	before := translate(srv1.URL, probe)
	fmt.Printf("pre-crash answer: %d bytes\n", len(before))

	// 4. kill -9: the server vanishes mid-flight. No WAL.Close, no final
	// sync — whatever the acks promised must already be on disk.
	srv1.Close()
	_ = tn1 // the dead process's engine is never touched again

	// 5. Restart: the same boot path finds the snapshot plus a WAL tail
	// and replays it through the engine's replay path.
	srv2, tn2 := boot(ds, storeDir, walDir)
	defer srv2.Close()
	defer tn2.WAL.Close()
	st := tn2.WAL.Stats()
	fmt.Printf("recovered: %d WAL record(s) replayed, log at seq %d\n", st.RecoveredRecords, st.Seq)

	// 6. Prove identical: the recovered engine's answer is byte-for-byte
	// the pre-crash one.
	after := translate(srv2.URL, probe)
	if !bytes.Equal(before, after) {
		log.Fatalf("recovered engine diverged:\nbefore: %s\nafter:  %s", before, after)
	}
	fmt.Println("post-crash answer is byte-identical: no acknowledged append was lost")
}

// boot assembles a durable tenant the way templar-serve -store -wal does:
// load the packed snapshot, rehydrate a live engine, attach the WAL (which
// replays any tail past the snapshot's recorded sequence).
func boot(ds *datasets.Dataset, storeDir, walDir string) (*httptest.Server, *serve.Tenant) {
	ar, err := store.ReadFile(filepath.Join(storeDir, store.Filename(ds.Name)))
	must(err)
	sys := templar.NewLive(ds.DB, embedding.New(), qfg.NewLiveFromSnapshot(ar.Snapshot), templar.Options{LogJoin: true})
	tn := &serve.Tenant{
		Name:        ds.Name,
		Sys:         sys,
		Source:      "store",
		StorePath:   filepath.Join(storeDir, store.Filename(ds.Name)),
		SnapshotSeq: ar.WalSeq,
	}
	_, err = serve.AttachWAL(tn, walDir, wal.Options{})
	must(err)
	reg := serve.NewRegistry()
	must(reg.Add(tn))
	return httptest.NewServer(serve.NewRegistryServer(reg, ds.Name, 4, nil).Handler()), tn
}

// translate posts one batch and returns the raw response bytes.
func translate(base, body string) []byte {
	resp, err := http.Post(base+"/v2/mas/translate", "application/json", bytes.NewReader([]byte(body)))
	must(err)
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err = buf.ReadFrom(resp.Body)
	must(err)
	return buf.Bytes()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
