// Client: the Go SDK quickstart. Boots an in-process Templar server over
// the MAS benchmark (exactly what `templar-serve -datasets mas` hosts),
// then speaks to it purely through templar/pkg/client and the public
// templar/pkg/api wire contract — discovery, keyword mapping, batch
// translation, a live log append, and structured-error handling by code.
// Point client.New at a real deployment and everything below works
// unchanged.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/qfg"
	"templar/internal/serve"
	"templar/internal/sqlparse"
	"templar/internal/templar"
	"templar/pkg/api"
	"templar/pkg/client"
)

func main() {
	// 0. An in-process stand-in for a running templar-serve. A real
	// integration skips this block and dials its deployment's URL.
	ds := datasets.MAS()
	entries := make([]sqlparse.LogEntry, 0, len(ds.Tasks))
	for _, t := range ds.Tasks {
		q, err := sqlparse.Parse(t.Gold)
		must(err)
		entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
	}
	graph, err := qfg.Build(entries, fragment.NoConstOp)
	must(err)
	sys := templar.NewLive(ds.DB, embedding.New(), qfg.NewLive(graph), templar.Options{LogJoin: true})
	srv := httptest.NewServer(serve.NewServer(sys, ds.Name, 4).Handler())
	defer srv.Close()

	// 1. Dial. The client retries 5xx with backoff out of the box.
	c, err := client.New(srv.URL)
	must(err)
	ctx := context.Background()

	// 2. Discover what the server hosts.
	hosted, err := c.Datasets(ctx)
	must(err)
	for _, d := range hosted {
		fmt.Printf("dataset %s: %d relations, %d logged queries (default=%v)\n",
			d.Name, d.Relations, d.LogQueries, d.Default)
	}

	// 3. MAPKEYWORDS: ranked keyword→fragment configurations.
	mk, err := c.MapKeywords(ctx, "mas", api.MapKeywordsRequest{
		KeywordsInput: api.KeywordsInput{Spec: "papers:select;Databases:where"},
		TopK:          2,
	})
	must(err)
	for i, cfg := range mk.Configurations {
		fmt.Printf("config #%d score=%.3f: %d mappings\n", i+1, cfg.Score, len(cfg.Mappings))
	}

	// 4. Batch translation; per-query failures ride inline as structured
	// errors, so one bad query never sinks its siblings.
	tr, err := c.Translate(ctx, "mas", api.TranslateRequest{Queries: []api.KeywordsInput{
		{Spec: "papers:select;Databases:where"},
		{Spec: "authors:select;Data Mining:where"},
	}})
	must(err)
	for _, r := range tr.Results {
		fmt.Printf("SQL: %s\n", r.Rendered)
	}

	// 5. Feed a user's accepted query back into the live log: future
	// requests rank against the grown evidence.
	ar, err := c.AppendLog(ctx, "mas", api.LogAppendRequest{Queries: []api.LogEntry{
		{SQL: tr.Results[0].SQL},
	}})
	must(err)
	fmt.Printf("log grew to %d queries (%d fragments)\n", ar.LogQueries, ar.LogFragments)

	// 6. Structured errors: branch on the machine-readable code, not on
	// message prose.
	_, err = c.MapKeywords(ctx, "nonesuch", api.MapKeywordsRequest{
		KeywordsInput: api.KeywordsInput{Spec: "papers:select"},
	})
	var apiErr *api.Error
	if errors.As(err, &apiErr) && apiErr.Code == api.CodeUnknownDataset {
		fmt.Printf("structured error: code=%s status=%d dataset=%q\n", apiErr.Code, apiErr.Status, apiErr.Dataset)
	} else {
		log.Fatalf("expected an unknown_dataset error, got %v", err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
